package lp

import (
	"math"
	"testing"

	"mecache/internal/rng"
)

// randomBoundedLP builds a random LP kept bounded by per-variable box rows,
// mirroring TestRandomBoundedLPs.
func randomBoundedLP(r *rng.Source, n, m int) *Problem {
	p := NewProblem(n)
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = r.FloatRange(-5, 5)
	}
	if err := p.SetObjective(obj); err != nil {
		panic(err)
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		if err := p.AddConstraint(row, LE, r.FloatRange(1, 10)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.FloatRange(0, 3)
		}
		if err := p.AddConstraint(row, LE, r.FloatRange(1, 20)); err != nil {
			panic(err)
		}
	}
	return p
}

func TestSolveExportsBasis(t *testing.T) {
	r := rng.New(3)
	p := randomBoundedLP(r, 4, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Basis) != p.NumConstraints() {
		t.Fatalf("basis has %d entries, want %d", len(sol.Basis), p.NumConstraints())
	}
	seen := map[int]bool{}
	for _, b := range sol.Basis {
		if b < 0 || seen[b] {
			t.Fatalf("invalid basis %v", sol.Basis)
		}
		seen[b] = true
	}
}

func TestWarmStartIdenticalProblem(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		p := randomBoundedLP(r, 2+r.Intn(4), 1+r.Intn(4))
		cold, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		warm, err := p.SolveWithBasis(cold.Basis)
		if err != nil {
			t.Fatal(err)
		}
		// Re-solving the exact same problem from its own optimal basis must
		// reproduce the same vertex: no pivot has a negative reduced cost, so
		// phase 2 terminates immediately at the installed point. The install
		// pivots run in a different order than the cold solve, so values agree
		// to tolerance rather than bit-for-bit — which is exactly why the
		// epoch byte-identity contract never routes through SolveWithBasis.
		if len(warm.X) != len(cold.X) {
			t.Fatalf("seed %d: warm X %v != cold X %v", seed, warm.X, cold.X)
		}
		for j := range cold.X {
			if math.Abs(cold.X[j]-warm.X[j]) > 1e-9 {
				t.Fatalf("seed %d: warm X %v != cold X %v", seed, warm.X, cold.X)
			}
		}
		if math.Abs(cold.Objective-warm.Objective) > 1e-9 {
			t.Fatalf("seed %d: warm objective %v != cold %v", seed, warm.Objective, cold.Objective)
		}
	}
}

func TestWarmStartPerturbedMatchesColdObjective(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := rng.New(100 + seed)
		n, m := 2+r.Intn(4), 1+r.Intn(4)
		p := randomBoundedLP(r, n, m)
		base, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		// Perturb the objective, rebuild, and compare warm against cold.
		q := randomBoundedLP(rng.New(100+seed), n, m) // identical constraints
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = r.FloatRange(-5, 5)
		}
		if err := q.SetObjective(obj); err != nil {
			t.Fatal(err)
		}
		cold, err := q.Solve()
		if err != nil {
			t.Fatal(err)
		}
		warm, err := q.SolveWithBasis(base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cold.Objective-warm.Objective) > 1e-7 {
			t.Fatalf("seed %d: warm objective %v != cold %v", seed, warm.Objective, cold.Objective)
		}
		if warm.Status != Optimal {
			t.Fatalf("seed %d: warm status %v", seed, warm.Status)
		}
	}
}

func TestWarmStartEqualityRows(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3: warm start across a small rhs
	// change on a problem that needs artificials when solved cold.
	build := func(total float64) *Problem {
		p := NewProblem(2)
		if err := p.SetObjective([]float64{1, 2}); err != nil {
			panic(err)
		}
		if err := p.AddConstraint([]float64{1, 1}, EQ, total); err != nil {
			panic(err)
		}
		if err := p.AddConstraint([]float64{1, 0}, GE, 3); err != nil {
			panic(err)
		}
		return p
	}
	base, err := build(10).Solve()
	if err != nil {
		t.Fatal(err)
	}
	q := build(12)
	cold, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := q.SolveWithBasis(base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold.Objective-warm.Objective) > 1e-9 {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
}

func TestWarmStartBadBasisFallsBack(t *testing.T) {
	r := rng.New(7)
	p := randomBoundedLP(r, 4, 2)
	cold, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]int{
		nil,                      // wrong length
		{0, 0, 0, 0, 0, 0},       // duplicates
		{-1, 1, 2, 3, 4, 5},      // out of range (low)
		{0, 1, 2, 3, 4, 999},     // out of range (high)
		cold.Basis[:len(cold.Basis)-1], // short
	}
	for i, b := range bad {
		sol, err := p.SolveWithBasis(b)
		if err != nil {
			t.Fatalf("case %d: fallback errored: %v", i, err)
		}
		if math.Abs(sol.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("case %d: fallback objective %v != cold %v", i, sol.Objective, cold.Objective)
		}
	}
}

func TestWarmStartInfeasibleProblemFallsBack(t *testing.T) {
	// The cached basis comes from a feasible problem; the new problem is
	// infeasible, so the warm path must surface the cold verdict.
	p := NewProblem(1)
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	base, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	q := NewProblem(1)
	if err := q.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddConstraint([]float64{1}, GE, 5); err != nil {
		t.Fatal(err)
	}
	_, err = q.SolveWithBasis(base.Basis)
	if err == nil {
		t.Fatal("infeasible problem solved from stale basis")
	}
}
