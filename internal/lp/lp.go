// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It is the substrate for the Shmoys-Tardos GAP approximation (Algorithm
// Appro, step 3): the GAP LP relaxation is built as a Problem and solved
// here. The implementation uses Bland's anti-cycling rule with a numeric
// tolerance, which is slower than Dantzig pricing but guaranteed to
// terminate — the right trade-off for a correctness-critical inner solver.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int

// Constraint senses.
const (
	LE Relation = iota + 1 // a·x <= b
	EQ                     // a·x == b
	GE                     // a·x >= b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by Solve for non-optimal outcomes; the Solution still
// carries the Status.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

type constraint struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// Problem is a linear program under construction. Create with NewProblem,
// populate, then call Solve.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
}

// NewProblem returns an LP with numVars non-negative decision variables and
// a zero objective.
func NewProblem(numVars int) *Problem {
	return &Problem{
		numVars:   numVars,
		objective: make([]float64, numVars),
	}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the minimization objective coefficients. The slice is
// copied. It returns an error on a length mismatch.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.numVars {
		return fmt.Errorf("lp: objective has %d coefficients, problem has %d variables", len(c), p.numVars)
	}
	copy(p.objective, c)
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) error {
	if j < 0 || j >= p.numVars {
		return fmt.Errorf("lp: variable index %d out of range [0,%d)", j, p.numVars)
	}
	p.objective[j] = v
	return nil
}

// AddConstraint appends the constraint coeffs·x rel rhs. The coefficient
// slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: constraint has %d coefficients, problem has %d variables", len(coeffs), p.numVars)
	}
	if rel != LE && rel != EQ && rel != GE {
		return fmt.Errorf("lp: invalid relation %v", rel)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	c := constraint{coeffs: append([]float64(nil), coeffs...), rel: rel, rhs: rhs}
	p.constraints = append(p.constraints, c)
	return nil
}

// AddSparseConstraint appends a constraint given as (index, value) pairs.
func (p *Problem) AddSparseConstraint(idx []int, val []float64, rel Relation, rhs float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("lp: sparse constraint has %d indices but %d values", len(idx), len(val))
	}
	coeffs := make([]float64, p.numVars)
	for k, j := range idx {
		if j < 0 || j >= p.numVars {
			return fmt.Errorf("lp: variable index %d out of range [0,%d)", j, p.numVars)
		}
		coeffs[j] += val[k]
	}
	if rel != LE && rel != EQ && rel != GE {
		return fmt.Errorf("lp: invalid relation %v", rel)
	}
	c := constraint{coeffs: coeffs, rel: rel, rhs: rhs}
	p.constraints = append(p.constraints, c)
	return nil
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // values of the decision variables (Optimal only)
	Objective float64   // c·X (Optimal only)
	// Duals holds one dual price per constraint (in AddConstraint order),
	// recovered from the optimal basis. For a minimization LP, the duals
	// certify optimality through strong duality: Objective == Σ_i b_i·y_i
	// with y_i <= 0 for LE rows, y_i >= 0 for GE rows, and free for EQ.
	Duals []float64
	// Basis records the optimal basis (Optimal only): Basis[r] is the
	// tableau column — decision, slack/surplus, or artificial — basic in
	// constraint row r. It can seed SolveWithBasis on a nearby problem of
	// the same shape to skip phase 1 and most phase-2 pivots.
	Basis []int
}

const eps = 1e-9

// Solve runs the two-phase simplex method. On Infeasible or Unbounded it
// returns the matching sentinel error alongside a Solution carrying the
// status.
func (p *Problem) Solve() (Solution, error) {
	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificials > 0 {
		t.setPhase1Objective()
		if err := t.iterate(); err != nil {
			return Solution{Status: Infeasible}, err
		}
		if t.objectiveValue() > 1e-6 {
			return Solution{Status: Infeasible}, ErrInfeasible
		}
		t.driveOutArtificials()
	}
	// Phase 2: the real objective.
	t.setPhase2Objective(p.objective)
	if err := t.iterate(); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return Solution{Status: Unbounded}, err
		}
		return Solution{Status: Infeasible}, err
	}
	x := t.extract(p.numVars)
	obj := 0.0
	for j, cj := range p.objective {
		obj += cj * x[j]
	}
	return Solution{
		Status:    Optimal,
		X:         x,
		Objective: obj,
		Duals:     t.duals(p.objective),
		Basis:     append([]int(nil), t.basis...),
	}, nil
}
