package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func solve(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  x=2, y=6, obj=36.
	// As minimization of the negation.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-3, -5}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		a   []float64
		rhs float64
	}{
		{[]float64{1, 0}, 4},
		{[]float64{0, 2}, 12},
		{[]float64{3, 2}, 18},
	} {
		if err := p.AddConstraint(c.a, LE, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol := solve(t, p)
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("X = %v, want [2 6]", sol.X)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-7 {
		t.Fatalf("objective = %v, want -36", sol.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3  ->  x=10 is cheapest: y=0, obj=10.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, GE, 3); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.Objective-10) > 1e-7 {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
	if math.Abs(sol.X[0]-10) > 1e-7 {
		t.Fatalf("x = %v, want 10", sol.X[0])
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -5 is x >= 5; min x -> 5.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{-1}, LE, -5); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.X[0]-5) > 1e-7 {
		t.Fatalf("x = %v, want 5", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) || sol.Status != Infeasible {
		t.Fatalf("got (%v, %v), want Infeasible", sol.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	if err := p.SetObjective([]float64{-1}); err != nil { // min -x with x free upward
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, GE, 0); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) || sol.Status != Unbounded {
		t.Fatalf("got (%v, %v), want Unbounded", sol.Status, err)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	p := NewProblem(4)
	if err := p.SetObjective([]float64{-0.75, 150, -0.02, 6}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("Beale objective = %v, want -0.05", sol.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality constraints leave a redundant artificial basic at 0.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{2, 2}, EQ, 8); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.Objective-4) > 1e-7 {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(5)
	if err := p.SetObjective([]float64{1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSparseConstraint([]int{0, 4}, []float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Fatal("objective length mismatch not rejected")
	}
	if err := p.AddConstraint([]float64{1}, LE, 1); err == nil {
		t.Fatal("constraint length mismatch not rejected")
	}
	if err := p.AddConstraint([]float64{1, 1}, Relation(0), 1); err == nil {
		t.Fatal("invalid relation not rejected")
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, math.NaN()); err == nil {
		t.Fatal("NaN rhs not rejected")
	}
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Fatal("out-of-range objective index not rejected")
	}
	if err := p.AddSparseConstraint([]int{9}, []float64{1}, LE, 1); err == nil {
		t.Fatal("out-of-range sparse index not rejected")
	}
}

// feasible checks that x satisfies every constraint of p within tolerance.
func feasible(p *Problem, x []float64) bool {
	for _, xv := range x {
		if xv < -1e-7 {
			return false
		}
	}
	for _, c := range p.constraints {
		lhs := 0.0
		for j, a := range c.coeffs {
			lhs += a * x[j]
		}
		switch c.rel {
		case LE:
			if lhs > c.rhs+1e-6 {
				return false
			}
		case GE:
			if lhs < c.rhs-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// TestRandomBoundedLPs: random LE-only LPs with non-negative coefficients
// and positive RHS are always feasible (x = 0) and bounded (costs >= 0).
// The simplex solution must be feasible and beat a dense random sample of
// feasible points.
func TestRandomBoundedLPs(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(4)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = r.FloatRange(-5, 5)
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		// Box constraints keep it bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			if err := p.AddConstraint(row, LE, r.FloatRange(1, 10)); err != nil {
				return false
			}
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = r.FloatRange(0, 3)
			}
			if err := p.AddConstraint(row, LE, r.FloatRange(1, 20)); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		if !feasible(p, sol.X) {
			return false
		}
		// Random feasible points must not beat the simplex optimum.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.FloatRange(0, 10)
			}
			if !feasible(p, x) {
				continue
			}
			v := 0.0
			for j := range x {
				v += obj[j] * x[j]
			}
			if v < sol.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTransportationOptimal cross-checks the simplex on a transportation
// problem with a known optimum.
func TestTransportationOptimal(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15).
	// costs: s0->d0:1 s0->d1:4 s1->d0:2 s1->d1:1
	// Optimal: x00=10, x10=5, x11=15 -> 10*1 + 5*2 + 15*1 = 35.
	p := NewProblem(4) // x00 x01 x10 x11
	if err := p.SetObjective([]float64{1, 4, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1, 0, 0}, EQ, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 0, 1, 1}, EQ, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0, 1, 0}, EQ, 15); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 1, 0, 1}, EQ, 15); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	if math.Abs(sol.Objective-35) > 1e-7 {
		t.Fatalf("objective = %v, want 35", sol.Objective)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Fatal("relation strings wrong")
	}
}

func BenchmarkSimplex30x60(b *testing.B) {
	r := rng.New(1)
	n, m := 60, 30
	p := NewProblem(n)
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = r.FloatRange(0, 5)
	}
	if err := p.SetObjective(obj); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.FloatRange(0, 2)
		}
		if err := p.AddConstraint(row, GE, r.FloatRange(1, 10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDualsStrongDuality: at optimality, the dual objective b·y equals the
// primal objective, with the sign conventions documented on Solution.
func TestDualsStrongDuality(t *testing.T) {
	// max 3x+5y (as min of negation) s.t. x<=4, 2y<=12, 3x+2y<=18.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-3, -5}); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{4, 12, 18}
	rows := [][]float64{{1, 0}, {0, 2}, {3, 2}}
	for i := range rows {
		if err := p.AddConstraint(rows[i], LE, rhs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sol := solve(t, p)
	if len(sol.Duals) != 3 {
		t.Fatalf("duals %v", sol.Duals)
	}
	dualObj := 0.0
	for i, y := range sol.Duals {
		dualObj += rhs[i] * y
		if y > 1e-9 {
			t.Fatalf("LE dual %d = %v, want <= 0 for minimization", i, y)
		}
	}
	if math.Abs(dualObj-sol.Objective) > 1e-7 {
		t.Fatalf("dual objective %v != primal %v", dualObj, sol.Objective)
	}
}

func TestDualsMixedConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, GE, 3); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	dualObj := 10*sol.Duals[0] + 3*sol.Duals[1]
	if math.Abs(dualObj-sol.Objective) > 1e-7 {
		t.Fatalf("dual objective %v != primal %v (duals %v)", dualObj, sol.Objective, sol.Duals)
	}
	if sol.Duals[1] < -1e-9 {
		t.Fatalf("GE dual %v, want >= 0", sol.Duals[1])
	}
}

// TestDualsRandomStrongDuality checks b·y == c·x on random bounded LPs.
func TestDualsRandomStrongDuality(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = r.FloatRange(-3, 5)
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		var rhs []float64
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			b := r.FloatRange(1, 10)
			if err := p.AddConstraint(row, LE, b); err != nil {
				return false
			}
			rhs = append(rhs, b)
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = r.FloatRange(0, 2)
			}
			b := r.FloatRange(1, 15)
			if err := p.AddConstraint(row, LE, b); err != nil {
				return false
			}
			rhs = append(rhs, b)
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		dualObj := 0.0
		for i, y := range sol.Duals {
			dualObj += rhs[i] * y
		}
		return math.Abs(dualObj-sol.Objective) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDualsCertifyGAPLowerBound: the GAP LP relaxation's dual objective
// matches the primal, giving an independently checkable lower-bound
// certificate for the Shmoys-Tardos pipeline.
func TestDualsComplementarySlackness(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-3, -5}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 2}, LE, 12); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{3, 2}, LE, 18); err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p)
	// Constraint 0 is slack at the optimum (x=2 < 4): its dual must be 0.
	if math.Abs(sol.Duals[0]) > 1e-9 {
		t.Fatalf("slack constraint has dual %v", sol.Duals[0])
	}
	// Constraints 1 and 2 are tight: duals nonzero.
	if sol.Duals[1] == 0 || sol.Duals[2] == 0 {
		t.Fatalf("tight constraints have zero duals: %v", sol.Duals)
	}
}
