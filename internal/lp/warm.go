package lp

import "math"

// SolveWithBasis warm-starts the simplex from a basis previously returned in
// Solution.Basis — typically from solving a nearby problem of the same shape
// (same variables and constraints, perturbed coefficients). The cached basis
// is installed into a fresh tableau by Gaussian pivots; if it is still
// primal-feasible, phase 1 is skipped entirely and phase 2 resumes from the
// cached vertex, which for small perturbations is already optimal or a few
// pivots away.
//
// The warm start is strictly an accelerator: on any irregularity — wrong
// basis length, out-of-range or duplicate columns, a singular or unstable
// install, an infeasible cached vertex, or a pivot failure — it falls back
// to the cold Solve. Note that under degeneracy a warm start may stop at a
// different optimal vertex than the cold solve (same objective, possibly
// different X), so callers that need bit-identical solutions across runs
// must use Solve.
func (p *Problem) SolveWithBasis(basis []int) (Solution, error) {
	if sol, ok := p.trySolveWithBasis(basis); ok {
		return sol, nil
	}
	return p.Solve()
}

// instPivotTol rejects pivots too small to install a basis column stably.
const instPivotTol = 1e-7

// trySolveWithBasis attempts the warm start; ok == false means the caller
// should run the cold path instead.
func (p *Problem) trySolveWithBasis(basis []int) (Solution, bool) {
	t := newTableau(p)
	m := len(t.rows)
	total := len(t.cost)
	if len(basis) != m || m == 0 {
		return Solution{}, false
	}
	inBasis := make([]bool, total)
	for _, b := range basis {
		if b < 0 || b >= total || inBasis[b] {
			return Solution{}, false
		}
		inBasis[b] = true
	}

	// Install the basis. Row assignment within the basis set is free (any
	// nonsingular assignment yields the same basic solution), so each column
	// picks the largest-magnitude pivot among rows not yet claimed. Columns
	// already basic in the initial tableau (slacks) just claim their row.
	used := make([]bool, m)
	for r, b := range t.basis {
		if inBasis[b] {
			used[r] = true
		}
	}
	for _, b := range basis {
		already := false
		for r, cur := range t.basis {
			if cur == b && used[r] {
				already = true
				break
			}
		}
		if already {
			continue
		}
		best, bestAbs := -1, instPivotTol
		for r := 0; r < m; r++ {
			if used[r] {
				continue
			}
			if a := math.Abs(t.rows[r][b]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return Solution{}, false // singular or ill-conditioned basis
		}
		t.pivot(best, b)
		used[best] = true
	}

	// The installed vertex must be primal-feasible, and any artificial left
	// basic must sit at zero (a positive artificial means the cached basis
	// does not satisfy this problem's equality rows).
	for r := 0; r < m; r++ {
		if t.rhs[r] < -instPivotTol {
			return Solution{}, false
		}
		if t.rhs[r] < 0 {
			t.rhs[r] = 0
		}
		if t.basis[r] >= t.artStart && t.rhs[r] > instPivotTol {
			return Solution{}, false
		}
	}

	t.setPhase2Objective(p.objective)
	if err := t.iterate(); err != nil {
		return Solution{}, false
	}
	x := t.extract(p.numVars)
	obj := 0.0
	for j, cj := range p.objective {
		obj += cj * x[j]
	}
	return Solution{
		Status:    Optimal,
		X:         x,
		Objective: obj,
		Duals:     t.duals(p.objective),
		Basis:     append([]int(nil), t.basis...),
	}, true
}
