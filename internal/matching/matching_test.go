package matching

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func TestTinyKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := MinCostAssignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %v, want 5 (assign=%v)", total, assign)
	}
}

func TestRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 1, 10},
	}
	assign, total, err := MinCostAssignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 2 {
		t.Fatalf("assign=%v total=%v, want [1 2] / 2", assign, total)
	}
}

func TestForbiddenEntriesAvoided(t *testing.T) {
	cost := [][]float64{
		{Forbidden, 5},
		{1, Forbidden},
	}
	assign, total, err := MinCostAssignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 0 || total != 6 {
		t.Fatalf("assign=%v total=%v, want [1 0] / 6", assign, total)
	}
}

func TestNoPerfectMatching(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{1, 2},
	}
	if _, _, err := MinCostAssignment(cost); err == nil {
		t.Fatal("expected no-perfect-matching error")
	}
}

func TestEmptyMatrix(t *testing.T) {
	assign, total, err := MinCostAssignment(nil)
	if err != nil || assign != nil || total != 0 {
		t.Fatalf("empty matrix: got (%v,%v,%v)", assign, total, err)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := MinCostAssignment([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix not rejected")
	}
	if _, _, err := MinCostAssignment([][]float64{{1}, {2}}); err == nil {
		t.Fatal("more rows than columns not rejected")
	}
	if _, _, err := MinCostAssignment([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN cost not rejected")
	}
}

func bruteForce(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(1)
	used := make([]bool, m)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		// No acc-based pruning: costs may be negative, so a partial sum is
		// not a lower bound on the completion.
		if row == n {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < m; j++ {
			if !used[j] && !math.IsInf(cost[row][j], 1) {
				used[j] = true
				rec(row+1, acc+cost[row][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMatchesBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(5)
		m := n + r.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if r.Bool(0.15) {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = r.FloatRange(0, 10)
				}
			}
		}
		want := bruteForce(cost)
		assign, got, err := MinCostAssignment(cost)
		if math.IsInf(want, 1) {
			return err != nil
		}
		if err != nil {
			return false
		}
		// Assignment must be a valid injection.
		seen := make(map[int]bool)
		for _, j := range assign {
			if j < 0 || j >= m || seen[j] {
				return false
			}
			seen[j] = true
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := MinCostAssignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func BenchmarkAssignment100(b *testing.B) {
	r := rng.New(1)
	n := 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = r.FloatRange(0, 100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinCostAssignment(cost); err != nil {
			b.Fatal(err)
		}
	}
}
