// Package matching implements min-cost bipartite matching via the
// shortest-augmenting-path Hungarian algorithm (Jonker-Volgenant variant,
// O(n^2 m)).
//
// In the mecache build it performs the rounding step of the Shmoys-Tardos
// GAP approximation: fractional LP assignments are decomposed into bin
// "slots", and items are matched to slots at minimum cost, which is what
// turns the LP lower bound into an integral 2-approximate assignment.
package matching

import (
	"fmt"
	"math"
)

// Forbidden marks an (item, slot) pair that must not be matched.
var Forbidden = math.Inf(1)

// MinCostAssignment finds a minimum-cost perfect matching of every row of
// cost to a distinct column. The matrix may be rectangular with
// rows <= cols; entries equal to Forbidden are never used. It returns
// assign with assign[row] = column, and the total cost. An error is
// returned if no perfect matching over permitted entries exists.
func MinCostAssignment(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("matching: %d rows exceed %d columns", n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("matching: ragged matrix (row %d has %d entries, want %d)", i, len(row), m)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, -1) {
				return nil, 0, fmt.Errorf("matching: invalid cost at (%d,%d): %v", i, j, v)
			}
		}
	}

	// Jonker-Volgenant with 1-based sentinel column 0.
	// u, v are dual potentials; way[j] is the alternating-tree parent column.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = free)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				// A forbidden pair never relaxes minv[j], but the column may
				// already be reachable through an earlier tree node, so it
				// still competes for delta below.
				if c := cost[i0-1][j-1]; !math.IsInf(c, 1) {
					if cur := c - u[i0] - v[j]; cur < minv[j] {
						minv[j] = cur
						way[j] = j0
					}
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if delta == inf {
				return nil, 0, fmt.Errorf("matching: no perfect matching exists (row %d cannot be matched)", i-1)
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else if minv[j] < inf {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the alternating tree.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total, nil
}
