package matching

import (
	"math"
	"testing"

	"mecache/internal/rng"
)

// FuzzMinCostAssignment checks the Hungarian solver against brute force on
// randomized instances with forbidden entries: identical optima whenever a
// perfect matching exists, matching errors otherwise, and never a panic.
func FuzzMinCostAssignment(f *testing.F) {
	f.Add(uint64(7), uint8(3), uint8(4), uint8(40))
	f.Add(uint64(0xef6a9da8ee6e165b), uint8(4), uint8(4), uint8(38)) // the historical delta-skip bug
	f.Add(uint64(1), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw, forbidPct uint8) {
		r := rng.New(seed)
		n := 1 + int(nRaw%5)
		m := n + int(mRaw%3)
		pForbid := float64(forbidPct%70) / 100
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if r.Bool(pForbid) {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = r.FloatRange(-5, 10)
				}
			}
		}
		want := bruteForce(cost)
		assign, got, err := MinCostAssignment(cost)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("no perfect matching exists but solver returned %v", assign)
			}
			return
		}
		if err != nil {
			t.Fatalf("solver failed on solvable instance: %v", err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cost %v, brute force %v", got, want)
		}
		seen := make(map[int]bool)
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] || math.IsInf(cost[i][j], 1) {
				t.Fatalf("invalid assignment %v", assign)
			}
			seen[j] = true
		}
	})
}
