// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions used across the mecache experiments.
//
// Every experiment in the paper's evaluation section is driven by random
// parameters (topologies, demands, prices). To keep every figure exactly
// reproducible, all randomness flows through this package rather than
// math/rand's global state: a Source is seeded explicitly and can be Split
// into independent child streams, so adding randomness to one module never
// perturbs another module's draws.
package rng

import "math"

// Source is a deterministic random source based on SplitMix64 for stream
// derivation and xoshiro256** for generation. The zero value is not valid;
// use New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams with overwhelming probability.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if src.s[0] == 0 && src.s[1] == 0 && src.s[2] == 0 && src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns the new state and output.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Split derives an independent child stream. The parent stream is advanced,
// so repeated Splits yield distinct children.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Clone returns an exact copy of the source's current state: clone and
// original produce identical streams from this point on and are unlinked
// thereafter. The sharded best-response round uses clones so every shard
// replays the one serial shuffle stream without advancing the caller's.
func (r *Source) Clone() *Source {
	c := *r
	return &c
}

// Substream returns the independent child stream for task `index` of the
// run seeded by `seed`. Unlike Split, derivation reads no mutable state:
// the stream is a pure function of (seed, index), so parallel workers can
// derive their streams without coordination and task i draws the same
// numbers no matter how many workers run, in which order tasks are
// claimed, or whether the run is serial. This is the seeding discipline
// behind the deterministic worker pool in internal/parallel.
func Substream(seed, index uint64) *Source {
	// Two SplitMix64 rounds fold the pair into one well-mixed seed; the
	// intermediate hash keeps Substream(seed, 0) distinct from New(seed).
	_, h := splitMix64(seed)
	_, h = splitMix64(h ^ index)
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is always a programming error.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// FloatRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Source) FloatRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: FloatRange called with hi < lo")
	}
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	// 1 - Float64() is in (0, 1], keeping the log finite.
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place using Fisher-Yates.
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choose returns k distinct uniform indices from [0, n) in random order.
// It panics if k > n or k < 0.
func (r *Source) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose called with k outside [0, n]")
	}
	return r.Perm(n)[:k]
}
