package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestSplitDoesNotAliasParent(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	_ = p1.Split()
	_ = p2.Split()
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split must advance the parent deterministically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(15, 30)
		if v < 15 || v > 30 {
			t.Fatalf("IntRange(15,30) out of range: %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(0.05, 0.12)
		if v < 0.05 || v >= 0.12 {
			t.Fatalf("FloatRange out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoose(t *testing.T) {
	r := New(10)
	for trial := 0; trial < 100; trial++ {
		got := r.Choose(10, 4)
		if len(got) != 4 {
			t.Fatalf("Choose(10,4) returned %d elements", len(got))
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("Choose produced invalid or duplicate index %d", v)
			}
			seen[v] = true
		}
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose(2, 3) did not panic")
		}
	}()
	New(1).Choose(2, 3)
}

func TestBoolProbability(t *testing.T) {
	r := New(12)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestExpMean(t *testing.T) {
	r := New(21)
	const n = 200000
	const rate = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean %v, want %v", rate, mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestSubstreamIsPureFunctionOfSeedAndIndex(t *testing.T) {
	for _, idx := range []uint64{0, 1, 2, 1 << 40} {
		a := Substream(42, idx)
		b := Substream(42, idx)
		for i := 0; i < 16; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("Substream(42, %d) not reproducible at draw %d: %x vs %x", idx, i, x, y)
			}
		}
	}
}

func TestSubstreamsAreDistinct(t *testing.T) {
	// Distinct indices (and the parent New stream) must disagree quickly.
	seen := map[uint64]uint64{New(42).Uint64(): math.MaxUint64}
	for idx := uint64(0); idx < 1000; idx++ {
		v := Substream(42, idx).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("substreams %d and %d share first output %x", prev, idx, v)
		}
		seen[v] = idx
	}
}

func TestSubstreamIndependentOfDerivationOrder(t *testing.T) {
	// Deriving stream 7 first or last must not change its draws — the
	// property Split lacks and parallel fan-out requires.
	first := Substream(9, 7).Uint64()
	for i := uint64(0); i < 7; i++ {
		_ = Substream(9, i).Uint64()
	}
	if again := Substream(9, 7).Uint64(); again != first {
		t.Fatalf("derivation order changed substream 7: %x vs %x", first, again)
	}
}
