// Package sim is a small discrete-event simulation kernel with a virtual
// clock: events are callbacks scheduled at virtual times and executed in
// (time, insertion) order. It underpins the test-bed emulation, replacing
// wall-clock flow dynamics with deterministic virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Kernel is a discrete-event scheduler. The zero value is unusable; call
// NewKernel.
type Kernel struct {
	now   float64
	seq   int64
	queue eventQueue
	// processed counts events executed since creation.
	processed int
}

type event struct {
	time float64
	seq  int64 // ties broken by insertion order for determinism
	fn   func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() float64 { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() int { return k.processed }

// Pending returns the number of events not yet executed.
func (k *Kernel) Pending() int { return k.queue.Len() }

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error.
func (k *Kernel) At(t float64, fn func()) error {
	if fn == nil {
		return fmt.Errorf("sim: nil event callback")
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: invalid event time %v", t)
	}
	if t < k.now {
		return fmt.Errorf("sim: cannot schedule at %v, clock is at %v", t, k.now)
	}
	heap.Push(&k.queue, event{time: t, seq: k.seq, fn: fn})
	k.seq++
	return nil
}

// Schedule schedules fn after the given non-negative virtual delay.
func (k *Kernel) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("sim: invalid delay %v", delay)
	}
	return k.At(k.now+delay, fn)
}

// Run executes events until the queue is empty (callbacks may schedule
// more). maxEvents is a runaway backstop; it returns an error when
// exceeded.
func (k *Kernel) Run(maxEvents int) error {
	if maxEvents <= 0 {
		maxEvents = 10_000_000
	}
	for n := 0; k.queue.Len() > 0; n++ {
		if n >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, k.now)
		}
		e, _ := heap.Pop(&k.queue).(event)
		k.now = e.time
		k.processed++
		e.fn()
	}
	return nil
}

// RunUntil executes events with time <= horizon, leaving later events
// queued, and advances the clock to min(horizon, last event time executed).
func (k *Kernel) RunUntil(horizon float64, maxEvents int) error {
	if maxEvents <= 0 {
		maxEvents = 10_000_000
	}
	for n := 0; k.queue.Len() > 0; n++ {
		if n >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, k.now)
		}
		if k.queue[0].time > horizon {
			break
		}
		e, _ := heap.Pop(&k.queue).(event)
		k.now = e.time
		k.processed++
		e.fn()
	}
	if k.now < horizon {
		k.now = horizon
	}
	return nil
}
