package sim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	if err := k.At(3, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := k.At(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := k.At(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3 {
		t.Fatalf("clock = %v, want 3", k.Now())
	}
}

func TestTiesBrokenByInsertion(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if err := k.At(5, func() { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order = %v", order)
	}
}

func TestCallbacksMaySchedule(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			if err := k.Schedule(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := k.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 5 || k.Now() != 4 {
		t.Fatalf("count=%d now=%v, want 5 / 4", count, k.Now())
	}
}

func TestSchedulingInPastRejected(t *testing.T) {
	k := NewKernel()
	if err := k.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := k.At(5, func() {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
	if err := k.Schedule(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := k.At(math.NaN(), func() {}); err == nil {
		t.Fatal("NaN time accepted")
	}
	if err := k.At(11, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		if err := k.At(tm, func() { fired = append(fired, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunUntil(2.5, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
}

func TestEventBudget(t *testing.T) {
	k := NewKernel()
	var forever func()
	forever = func() {
		if err := k.Schedule(1, forever); err != nil {
			t.Error(err)
		}
	}
	if err := k.Schedule(0, forever); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100); err == nil {
		t.Fatal("runaway schedule not caught by budget")
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		if err := k.Schedule(float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", k.Processed())
	}
}

func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		if err := k.Schedule(float64(i%100), func() {}); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if err := k.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
}
