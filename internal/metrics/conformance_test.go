package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// parseExposition runs ParseText — the exported strict parser — over a
// rendered exposition, failing the test on any spec violation. The
// renderer conformance suite below therefore exercises exactly the parser
// mecexp and the CI assertions consume.
func parseExposition(t *testing.T, text string) []Family {
	t.Helper()
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	return fams
}

// TestConformanceFullRegistry renders a registry exercising every
// instrument kind and label shape through the strict parser, then checks
// the histogram invariants the scrape consumers rely on.
func TestConformanceFullRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("conf_requests_total", "Requests served.", "route", "/v1/admit", "code", "200").Add(7)
	r.Counter("conf_requests_total", "Requests served.", "route", "/v1/admit", "code", "500").Add(1)
	r.Gauge("conf_temperature", "Needs\nescaping \"badly\" \\here", "site", "a\\b \"quoted\"\nnl").Set(-3.25)
	h := r.Histogram("conf_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	r.GaugeFunc("conf_func_gauge", "Scrape-time gauge.", func() float64 { return 12.5 })
	r.CounterFunc("conf_func_counter", "Scrape-time counter.", func() float64 { return 99 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	req, ok := byName["conf_requests_total"]
	if !ok || req.Type != "counter" || len(req.Samples) != 2 {
		t.Fatalf("bad counter family: %+v", req)
	}
	if req.Samples[0].Labels["code"] != "200" || req.Samples[0].Value != 7 {
		t.Fatalf("bad first counter sample: %+v", req.Samples[0])
	}

	temp := byName["conf_temperature"]
	if temp.Type != "gauge" || len(temp.Samples) != 1 {
		t.Fatalf("bad gauge family: %+v", temp)
	}
	if got := temp.Samples[0].Labels["site"]; got != "a\\b \"quoted\"\nnl" {
		t.Fatalf("label escaping round-trip failed: %q", got)
	}
	if temp.Samples[0].Value != -3.25 {
		t.Fatalf("gauge value %v", temp.Samples[0].Value)
	}

	if byName["conf_func_gauge"].Samples[0].Value != 12.5 {
		t.Fatal("GaugeFunc value not rendered")
	}
	if f := byName["conf_func_counter"]; f.Type != "counter" || f.Samples[0].Value != 99 {
		t.Fatalf("CounterFunc family wrong: %+v", f)
	}

	checkHistogramInvariants(t, byName["conf_latency_seconds"], 5, 0.05+0.5+0.5+5+50)
}

// checkHistogramInvariants asserts the scrape contract of one histogram
// family via the exported CheckHistogram, plus the expected count and sum.
func checkHistogramInvariants(t *testing.T, f Family, wantCount uint64, wantSum float64) {
	t.Helper()
	count, sum, err := CheckHistogram(f)
	if err != nil {
		t.Fatal(err)
	}
	if count != float64(wantCount) {
		t.Fatalf("%s: count %v, want %d", f.Name, count, wantCount)
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("%s: sum %v, want %v", f.Name, sum, wantSum)
	}
}

// TestConformanceRuntimeCollectors runs the runtime gauges through the
// strict parser and sanity-checks their values.
func TestConformanceRuntimeCollectors(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	got := map[string]float64{}
	for _, f := range fams {
		if len(f.Samples) != 1 {
			t.Fatalf("%s: %d samples, want 1", f.Name, len(f.Samples))
		}
		got[f.Name] = f.Samples[0].Value
	}
	if got["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", got["go_goroutines"])
	}
	if got["go_memstats_heap_alloc_bytes"] <= 0 || got["go_memstats_sys_bytes"] <= 0 {
		t.Fatalf("implausible memory gauges: %v", got)
	}
	if got["go_gc_pause_seconds_total"] < 0 {
		t.Fatalf("negative GC pause total: %v", got["go_gc_pause_seconds_total"])
	}
}

// TestFuncInstrumentMisuse pins the registration contracts.
func TestFuncInstrumentMisuse(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "nil func", func() { r.GaugeFunc("x_total", "h", nil) })
	r.GaugeFunc("x_g", "h", func() float64 { return 1 })
	mustPanic(t, "type conflict", func() { r.CounterFunc("x_g", "h", func() float64 { return 1 }) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestConformanceEveryExistingSeries feeds the shapes the daemon actually
// registers (multi-label counters, per-cloudlet gauges, latency histograms
// at the production buckets) through the parser, guarding against renderer
// regressions breaking the live /metrics endpoint.
func TestConformanceEveryExistingSeries(t *testing.T) {
	r := NewRegistry()
	for _, res := range []string{"accepted", "rejected", "error"} {
		r.Counter("mecd_admissions_total", "Admission outcomes.", "result", res).Inc()
	}
	for i := 0; i < 4; i++ {
		r.Gauge("mecd_cloudlet_load", "Tenants per cloudlet.", "cloudlet", fmt.Sprint(i)).Set(float64(i))
	}
	h := r.Histogram("mecd_admission_seconds", "Admission latency.",
		[]float64{1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1, 10})
	h.Observe(3e-4)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	for _, f := range fams {
		if f.Name == "mecd_admission_seconds" {
			checkHistogramInvariants(t, f, 1, 3e-4)
		}
	}
}
