package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed sample line of the 0.0.4 text format.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one parsed metric family: HELP/TYPE metadata plus samples.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// parseExposition is a strict line-oriented parser of the Prometheus text
// exposition format — strict in that it rejects everything the spec does
// not allow, so the renderer cannot drift into "works with our parser"
// laxness: HELP (optional) must immediately precede TYPE, TYPE must precede
// the family's samples, sample names must be the family name (plus
// _bucket/_sum/_count for histograms), label blocks must parse with
// escaping, values must be valid floats, and no family may repeat.
func parseExposition(t *testing.T, text string) []promFamily {
	t.Helper()
	var fams []promFamily
	seen := map[string]bool{}
	var cur *promFamily
	pendingHelp := "" // HELP seen, TYPE not yet
	pendingName := ""
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingHelp != "" {
				t.Fatalf("line %d: HELP not followed by TYPE", lineNo)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				t.Fatalf("line %d: HELP without docstring: %q", lineNo, line)
			}
			pendingName, pendingHelp = rest[:sp], rest[sp+1:]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid type %q", lineNo, typ)
			}
			if pendingHelp != "" && pendingName != name {
				t.Fatalf("line %d: HELP for %q followed by TYPE for %q", lineNo, pendingName, name)
			}
			if seen[name] {
				t.Fatalf("line %d: family %q appears twice", lineNo, name)
			}
			seen[name] = true
			fams = append(fams, promFamily{name: name, help: pendingHelp, typ: typ})
			cur = &fams[len(fams)-1]
			pendingHelp, pendingName = "", ""
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			if cur == nil {
				t.Fatalf("line %d: sample before any TYPE: %q", lineNo, line)
			}
			s := parseSampleLine(t, lineNo, line)
			base := cur.name
			ok := s.name == base
			if cur.typ == "histogram" {
				ok = ok || s.name == base+"_bucket" || s.name == base+"_sum" || s.name == base+"_count"
			}
			if !ok {
				t.Fatalf("line %d: sample %q under family %q", lineNo, s.name, base)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	if pendingHelp != "" {
		t.Fatalf("trailing HELP for %q without TYPE", pendingName)
	}
	return fams
}

// parseSampleLine parses `name{k="v",...} value` with full escape handling.
func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) {
		c := line[i]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !alpha {
			break
		}
		i++
	}
	if i == 0 {
		t.Fatalf("line %d: no metric name in %q", lineNo, line)
	}
	s.name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				t.Fatalf("line %d: unterminated label block", lineNo)
			}
			if line[i] == '}' {
				i++
				break
			}
			eq := strings.IndexByte(line[i:], '=')
			if eq < 0 {
				t.Fatalf("line %d: label without =", lineNo)
			}
			key := line[i : i+eq]
			i += eq + 1
			if i >= len(line) || line[i] != '"' {
				t.Fatalf("line %d: unquoted label value", lineNo)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					t.Fatalf("line %d: unterminated label value", lineNo)
				}
				if line[i] == '\\' {
					if i+1 >= len(line) {
						t.Fatalf("line %d: dangling escape", lineNo)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: invalid escape \\%c", lineNo, line[i+1])
					}
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				val.WriteByte(line[i])
				i++
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %q", lineNo, key)
			}
			s.labels[key] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		t.Fatalf("line %d: no space before value in %q", lineNo, line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[i:]), 64)
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", lineNo, line, err)
	}
	s.value = v
	return s
}

// TestConformanceFullRegistry renders a registry exercising every
// instrument kind and label shape through the strict parser, then checks
// the histogram invariants the scrape consumers rely on.
func TestConformanceFullRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("conf_requests_total", "Requests served.", "route", "/v1/admit", "code", "200").Add(7)
	r.Counter("conf_requests_total", "Requests served.", "route", "/v1/admit", "code", "500").Add(1)
	r.Gauge("conf_temperature", "Needs\nescaping \"badly\" \\here", "site", "a\\b \"quoted\"\nnl").Set(-3.25)
	h := r.Histogram("conf_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	r.GaugeFunc("conf_func_gauge", "Scrape-time gauge.", func() float64 { return 12.5 })
	r.CounterFunc("conf_func_counter", "Scrape-time counter.", func() float64 { return 99 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}

	req, ok := byName["conf_requests_total"]
	if !ok || req.typ != "counter" || len(req.samples) != 2 {
		t.Fatalf("bad counter family: %+v", req)
	}
	if req.samples[0].labels["code"] != "200" || req.samples[0].value != 7 {
		t.Fatalf("bad first counter sample: %+v", req.samples[0])
	}

	temp := byName["conf_temperature"]
	if temp.typ != "gauge" || len(temp.samples) != 1 {
		t.Fatalf("bad gauge family: %+v", temp)
	}
	if got := temp.samples[0].labels["site"]; got != "a\\b \"quoted\"\nnl" {
		t.Fatalf("label escaping round-trip failed: %q", got)
	}
	if temp.samples[0].value != -3.25 {
		t.Fatalf("gauge value %v", temp.samples[0].value)
	}

	if byName["conf_func_gauge"].samples[0].value != 12.5 {
		t.Fatal("GaugeFunc value not rendered")
	}
	if f := byName["conf_func_counter"]; f.typ != "counter" || f.samples[0].value != 99 {
		t.Fatalf("CounterFunc family wrong: %+v", f)
	}

	checkHistogramInvariants(t, byName["conf_latency_seconds"], 5, 0.05+0.5+0.5+5+50)
}

// checkHistogramInvariants asserts the scrape contract of one histogram
// family: cumulative non-decreasing buckets, a final +Inf bucket equal to
// _count, and a matching _sum.
func checkHistogramInvariants(t *testing.T, f promFamily, wantCount uint64, wantSum float64) {
	t.Helper()
	if f.typ != "histogram" {
		t.Fatalf("%s: type %q, want histogram", f.name, f.typ)
	}
	var count, infBucket float64
	var sum float64
	haveInf, haveSum, haveCount := false, false, false
	prev := -1.0
	prevBound := math.Inf(-1)
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket without le label", f.name)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
				infBucket = s.value
				haveInf = true
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: bad le %q", f.name, le)
				}
				bound = b
			}
			if bound <= prevBound {
				t.Fatalf("%s: bucket bounds not increasing (%v after %v)", f.name, bound, prevBound)
			}
			if s.value < prev {
				t.Fatalf("%s: cumulative counts decreased (%v after %v)", f.name, s.value, prev)
			}
			prev, prevBound = s.value, bound
		case f.name + "_sum":
			sum, haveSum = s.value, true
		case f.name + "_count":
			count, haveCount = s.value, true
		default:
			t.Fatalf("%s: unexpected sample %q", f.name, s.name)
		}
	}
	if !haveInf || !haveSum || !haveCount {
		t.Fatalf("%s: missing +Inf/_sum/_count (%v %v %v)", f.name, haveInf, haveSum, haveCount)
	}
	if infBucket != count {
		t.Fatalf("%s: +Inf bucket %v != count %v", f.name, infBucket, count)
	}
	if count != float64(wantCount) {
		t.Fatalf("%s: count %v, want %d", f.name, count, wantCount)
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("%s: sum %v, want %v", f.name, sum, wantSum)
	}
}

// TestConformanceRuntimeCollectors runs the runtime gauges through the
// strict parser and sanity-checks their values.
func TestConformanceRuntimeCollectors(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	got := map[string]float64{}
	for _, f := range fams {
		if len(f.samples) != 1 {
			t.Fatalf("%s: %d samples, want 1", f.name, len(f.samples))
		}
		got[f.name] = f.samples[0].value
	}
	if got["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", got["go_goroutines"])
	}
	if got["go_memstats_heap_alloc_bytes"] <= 0 || got["go_memstats_sys_bytes"] <= 0 {
		t.Fatalf("implausible memory gauges: %v", got)
	}
	if got["go_gc_pause_seconds_total"] < 0 {
		t.Fatalf("negative GC pause total: %v", got["go_gc_pause_seconds_total"])
	}
}

// TestFuncInstrumentMisuse pins the registration contracts.
func TestFuncInstrumentMisuse(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "nil func", func() { r.GaugeFunc("x_total", "h", nil) })
	r.GaugeFunc("x_g", "h", func() float64 { return 1 })
	mustPanic(t, "type conflict", func() { r.CounterFunc("x_g", "h", func() float64 { return 1 }) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestConformanceEveryExistingSeries feeds the shapes the daemon actually
// registers (multi-label counters, per-cloudlet gauges, latency histograms
// at the production buckets) through the parser, guarding against renderer
// regressions breaking the live /metrics endpoint.
func TestConformanceEveryExistingSeries(t *testing.T) {
	r := NewRegistry()
	for _, res := range []string{"accepted", "rejected", "error"} {
		r.Counter("mecd_admissions_total", "Admission outcomes.", "result", res).Inc()
	}
	for i := 0; i < 4; i++ {
		r.Gauge("mecd_cloudlet_load", "Tenants per cloudlet.", "cloudlet", fmt.Sprint(i)).Set(float64(i))
	}
	h := r.Histogram("mecd_admission_seconds", "Admission latency.",
		[]float64{1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1, 10})
	h.Observe(3e-4)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	for _, f := range fams {
		if f.name == "mecd_admission_seconds" {
			checkHistogramInvariants(t, f, 1, 3e-4)
		}
	}
}
