package metrics

import "runtime"

// RegisterRuntime adds the Go runtime's health gauges to the registry,
// sampled at scrape time: goroutine count, heap footprint, and cumulative
// GC work. Names follow the conventions of the official client's process
// collectors so standard dashboards pick them up unchanged.
//
// Each scrape calls runtime.ReadMemStats once per memory series; at human
// scrape intervals (seconds) the stop-the-world cost is negligible.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Number of heap bytes allocated and still in use.",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated objects.",
		func() float64 { return float64(readMemStats().HeapObjects) })
	r.GaugeFunc("go_memstats_sys_bytes", "Number of bytes obtained from system.",
		func() float64 { return float64(readMemStats().Sys) })
	r.CounterFunc("go_gc_cycles_total", "Number of completed GC cycles.",
		func() float64 { return float64(readMemStats().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
}

func readMemStats() *runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &ms
}
