package metrics

import (
	"strings"
	"testing"
)

// TestParseTextRejects pins the strictness contract: every malformed
// exposition the spec forbids must return an error, never a partial parse.
func TestParseTextRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{"help without type", "# HELP a doc\n# HELP b doc\n", "HELP not followed by TYPE"},
		{"help name mismatch", "# HELP a doc\n# TYPE b counter\n", "HELP for \"a\" followed by TYPE"},
		{"trailing help", "# HELP a doc\n", "trailing HELP"},
		{"bad type", "# TYPE a thing\n", "invalid type"},
		{"duplicate family", "# TYPE a counter\na 1\n# TYPE a counter\na 2\n", "appears twice"},
		{"stray comment", "# COMMENT hi\n", "unexpected comment"},
		{"sample before type", "a 1\n", "sample before any TYPE"},
		{"foreign sample", "# TYPE a counter\nb 1\n", "sample \"b\" under family \"a\""},
		{"suffix on counter", "# TYPE a counter\na_sum 1\n", "under family"},
		{"no value", "# TYPE a counter\na\n", "no space before value"},
		{"bad value", "# TYPE a counter\na zero\n", "bad value"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 1\n", "label without ="},
		{"unterminated value", "# TYPE a counter\na{x=\"1\n", "unterminated label value"},
		{"unquoted label", "# TYPE a counter\na{x=1} 1\n", "unquoted label value"},
		{"bad escape", "# TYPE a counter\na{x=\"\\t\"} 1\n", "invalid escape"},
		{"duplicate label", "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n", "duplicate label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseText(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTextRoundTrip parses a hand-written exposition and checks the
// structured result, including escape handling and histogram suffixes.
func TestParseTextRoundTrip(t *testing.T) {
	text := "# HELP a_total Things \\\\ with \\n escapes.\n" +
		"# TYPE a_total counter\n" +
		"a_total{k=\"v\\\"q\\\"\",z=\"line\\nbreak\"} 3\n" +
		"a_total 4.5\n" +
		"# TYPE lat histogram\n" +
		"lat_bucket{le=\"0.1\"} 1\n" +
		"lat_bucket{le=\"+Inf\"} 2\n" +
		"lat_sum 1.5\n" +
		"lat_count 2\n"
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2", len(fams))
	}
	a, ok := FindFamily(fams, "a_total")
	if !ok || a.Type != "counter" || len(a.Samples) != 2 {
		t.Fatalf("bad a_total family: %+v", a)
	}
	if a.Samples[0].Labels["k"] != `v"q"` || a.Samples[0].Labels["z"] != "line\nbreak" {
		t.Fatalf("escape decoding failed: %+v", a.Samples[0].Labels)
	}
	if a.Samples[1].Value != 4.5 || len(a.Samples[1].Labels) != 0 {
		t.Fatalf("bare sample parsed wrong: %+v", a.Samples[1])
	}

	lat, _ := FindFamily(fams, "lat")
	count, sum, err := CheckHistogram(lat)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || sum != 1.5 {
		t.Fatalf("histogram count/sum = %v/%v", count, sum)
	}

	// FindSample matches by label subset, so adding labels to a series
	// never breaks an existing assertion.
	if s, ok := FindSample(fams, "a_total", "k", `v"q"`); !ok || s.Value != 3 {
		t.Fatalf("FindSample subset match failed: %+v ok=%v", s, ok)
	}
	if _, ok := FindSample(fams, "a_total", "k", "nope"); ok {
		t.Fatal("FindSample matched a wrong label value")
	}
	if s, ok := FindSample(fams, "lat_bucket", "le", "+Inf"); !ok || s.Value != 2 {
		t.Fatalf("FindSample on histogram series failed: %+v ok=%v", s, ok)
	}
}

// TestCheckHistogramRejects pins the invariant checks on hand-built bad
// families.
func TestCheckHistogramRejects(t *testing.T) {
	base := func() Family {
		return Family{Name: "h", Type: "histogram", Samples: []Sample{
			{Name: "h_bucket", Labels: map[string]string{"le": "1"}, Value: 1},
			{Name: "h_bucket", Labels: map[string]string{"le": "+Inf"}, Value: 2},
			{Name: "h_sum", Value: 3},
			{Name: "h_count", Value: 2},
		}}
	}
	if _, _, err := CheckHistogram(base()); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}

	f := base()
	f.Samples[1].Value = 1 // +Inf != count
	f.Samples[3].Value = 9
	if _, _, err := CheckHistogram(f); err == nil {
		t.Fatal("accepted +Inf bucket != count")
	}

	f = base()
	f.Samples[0].Labels["le"] = "5" // bounds decrease: 5 then +Inf is fine; swap instead
	f.Samples[0], f.Samples[1] = f.Samples[1], f.Samples[0]
	if _, _, err := CheckHistogram(f); err == nil {
		t.Fatal("accepted non-increasing bucket bounds")
	}

	f = base()
	f.Samples = f.Samples[:3] // no _count
	if _, _, err := CheckHistogram(f); err == nil {
		t.Fatal("accepted histogram without _count")
	}

	f = base()
	f.Type = "gauge"
	if _, _, err := CheckHistogram(f); err == nil {
		t.Fatal("accepted non-histogram family")
	}
}
