package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mecd_admissions_total", "Total admissions.", "result", "accepted")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	r.Counter("mecd_admissions_total", "Total admissions.", "result", "rejected").Inc()
	g := r.Gauge("mecd_active_providers", "Active providers.")
	g.Set(41)
	g.Add(1)

	out := render(t, r)
	for _, want := range []string{
		"# HELP mecd_admissions_total Total admissions.\n",
		"# TYPE mecd_admissions_total counter\n",
		"mecd_admissions_total{result=\"accepted\"} 3\n",
		"mecd_admissions_total{result=\"rejected\"} 1\n",
		"# TYPE mecd_active_providers gauge\n",
		"mecd_active_providers 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE mecd_admissions_total") != 1 {
		t.Fatalf("TYPE line repeated per series:\n%s", out)
	}
}

func TestSameSeriesIsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "k", "v")
	b := r.Counter("x_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "", "k", "other")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	out := render(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 2.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsGetLE(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1}, "op", "admit").Observe(0.5)
	out := render(t, r)
	if !strings.Contains(out, `h_bucket{op="admit",le="1"} 1`) {
		t.Fatalf("labelled histogram bucket malformed:\n%s", out)
	}
	if !strings.Contains(out, `h_sum{op="admit"} 0.5`) {
		t.Fatalf("labelled histogram sum malformed:\n%s", out)
	}
}

func TestLabelEscapingAndOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", "b", "x\"y\n", "a", "z\\w").Set(1)
	out := render(t, r)
	if !strings.Contains(out, `g{a="z\\w",b="x\"y\n"} 1`) {
		t.Fatalf("label escaping/order wrong:\n%s", out)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("9bad", "") },
		func() { r.Counter("has space", "") },
		func() { r.Gauge("ok", "", "odd") },
		func() { r.Gauge("ok", "", "9bad", "v") },
		func() { r.Histogram("h", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				// Concurrent registration of the same series must be safe too.
				r.Counter("c_total", "").Value()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter lost updates: %v", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge lost updates: %v", g.Value())
	}
	if h.Snapshot().Count() != 8000 {
		t.Fatalf("histogram lost updates: %d", h.Snapshot().Count())
	}
}

// TestExpositionFormatShape validates the whole scrape line by line: every
// line is either a comment or `name[{labels}] value`, which is what the
// acceptance criterion "valid Prometheus text format" checks.
func TestExpositionFormatShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(3)
	r.Gauge("b", "help b", "k", "v").Set(-1.5)
	h := r.Histogram("c_seconds", "help c", []float64{0.5, 5})
	h.Observe(0.2)
	h.Observe(7)

	for _, line := range strings.Split(strings.TrimRight(render(t, r), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
			name = name[:i]
		}
		if !validName(name) {
			t.Fatalf("invalid metric name in %q", line)
		}
	}
}
