// Package metrics is a dependency-free instrumentation registry rendering
// the Prometheus text exposition format (version 0.0.4): counters, gauges,
// and fixed-bucket histograms, with optional label pairs.
//
// The serving daemon (internal/server) is the primary consumer: its request
// handlers and event loop record admissions, latencies, social cost, and
// per-cloudlet congestion here, and /metrics renders the registry. The
// histogram buckets are stats.Histogram underneath, so the same structure
// that powers the load generator's latency report backs the daemon's
// exported histograms.
//
// All instruments are safe for concurrent use. Rendering order is the
// registration order (families) and then label order (instruments within a
// family), so scrapes are deterministic.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mecache/internal/stats"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative or NaN deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram instrument.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Snapshot returns a merged copy of the underlying histogram, usable for
// quantile reports without holding the instrument lock.
func (h *Histogram) Snapshot() *stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, err := stats.NewHistogram(h.h.Bounds())
	if err != nil {
		panic("metrics: invalid bounds in live histogram: " + err.Error())
	}
	if err := c.Merge(h.h); err != nil {
		panic("metrics: self-merge failed: " + err.Error())
	}
	return c
}

// instrument is one (labels, value) series within a family.
type instrument struct {
	labels string // rendered label block, "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // scrape-time callback (GaugeFunc/CounterFunc)
}

// family is all series sharing a metric name.
type family struct {
	name string
	help string
	typ  string
	inst []*instrument
}

// Registry holds instruments and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// renderLabels turns ("k1", "v1", "k2", "v2") pairs into a canonical label
// block. Pairs are sorted by key so the same label set always maps to the
// same series. Panics on malformed input — label sets are compile-time
// constants in this codebase, so misuse is a programming error.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) || strings.Contains(kv[i], ":") {
			panic(fmt.Sprintf("metrics: invalid label name %q", kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(p.v)
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the (family, instrument) slot for name+labels.
func (r *Registry) lookup(name, help, typ string, labelKV []string) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	labels := renderLabels(labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	for _, in := range f.inst {
		if in.labels == labels {
			return in
		}
	}
	in := &instrument{labels: labels}
	f.inst = append(f.inst, in)
	return in
}

// Counter registers (or returns the existing) counter for name and label
// pairs ("key", "value", ...).
func (r *Registry) Counter(name, help string, labelKV ...string) *Counter {
	in := r.lookup(name, help, "counter", labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labelKV ...string) *Gauge {
	in := r.lookup(name, help, "gauge", labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for quantities the runtime already tracks (goroutine counts, heap sizes)
// where a stored instrument would only go stale. fn must be safe to call
// concurrently and must not block.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelKV ...string) {
	r.registerFunc(name, help, "gauge", fn, labelKV)
}

// CounterFunc is GaugeFunc for monotone sources (e.g. cumulative GC pause
// time). fn must be non-decreasing over the process lifetime.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelKV ...string) {
	r.registerFunc(name, help, "counter", fn, labelKV)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labelKV []string) {
	if fn == nil {
		panic("metrics: nil func for " + name)
	}
	in := r.lookup(name, help, typ, labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	in.fn = fn
}

// Histogram registers (or returns the existing) histogram over the given
// upper bucket bounds. Panics on invalid bounds (a programming error).
func (r *Registry) Histogram(name, help string, bounds []float64, labelKV ...string) *Histogram {
	in := r.lookup(name, help, "histogram", labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.h == nil {
		h, err := stats.NewHistogram(bounds)
		if err != nil {
			panic("metrics: " + err.Error())
		}
		in.h = &Histogram{h: h}
	}
	return in.h
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelsWithLE appends an le label to an existing label block.
func labelsWithLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders every registered instrument in the text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			// The format is line-oriented: HELP docstrings must escape
			// backslashes and line feeds or they corrupt the exposition.
			help := strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(f.help)
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, in := range f.inst {
			var err error
			switch {
			case in.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, in.labels, fmtFloat(in.fn()))
			case in.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, in.labels, fmtFloat(in.c.Value()))
			case in.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, in.labels, fmtFloat(in.g.Value()))
			case in.h != nil:
				err = writeHistogram(w, f.name, in)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, in *instrument) error {
	h := in.h.Snapshot()
	bounds := h.Bounds()
	cum := h.Cumulative()
	for i, b := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelsWithLE(in.labels, fmtFloat(b)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelsWithLE(in.labels, "+Inf"), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, in.labels, fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, in.labels, h.Count())
	return err
}
