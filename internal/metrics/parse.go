// Prometheus text-format (version 0.0.4) parsing. The parser is the
// consumer-side twin of WritePrometheus: strict in that it rejects
// everything the spec does not allow, so a scrape pipeline built on it
// (the mecexp experiment runner, CI smoke assertions) can never drift into
// "works with our renderer" laxness. It was born as test-only code
// validating the renderer and is exported because the experiment harness
// needs structured samples, not grep.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line: a metric name (for histograms the
// family name plus a _bucket/_sum/_count suffix), its label set, and the
// value.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Family is one parsed metric family: the HELP/TYPE metadata plus every
// sample rendered under it, in exposition order.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Type    string   `json:"type"`
	Samples []Sample `json:"samples"`
}

// ParseText is a strict parser of the Prometheus text exposition format:
// HELP (optional) must immediately precede TYPE, TYPE must precede the
// family's samples, sample names must be the family name (plus
// _bucket/_sum/_count for histograms and summaries), label blocks must
// parse with escaping, values must be valid floats, and no family may
// repeat. Families are returned in exposition order.
func ParseText(r io.Reader) ([]Family, error) {
	var fams []Family
	seen := map[string]bool{}
	var cur *Family
	pendingHelp := "" // HELP seen, TYPE not yet
	pendingName := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingHelp != "" {
				return nil, fmt.Errorf("metrics: line %d: HELP not followed by TYPE", lineNo)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("metrics: line %d: HELP without docstring: %q", lineNo, line)
			}
			pendingName, pendingHelp = rest[:sp], rest[sp+1:]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("metrics: line %d: invalid type %q", lineNo, typ)
			}
			if pendingHelp != "" && pendingName != name {
				return nil, fmt.Errorf("metrics: line %d: HELP for %q followed by TYPE for %q", lineNo, pendingName, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("metrics: line %d: family %q appears twice", lineNo, name)
			}
			seen[name] = true
			fams = append(fams, Family{Name: name, Help: pendingHelp, Type: typ})
			cur = &fams[len(fams)-1]
			pendingHelp, pendingName = "", ""
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("metrics: line %d: unexpected comment %q", lineNo, line)
		default:
			if cur == nil {
				return nil, fmt.Errorf("metrics: line %d: sample before any TYPE: %q", lineNo, line)
			}
			s, err := parseSampleLine(lineNo, line)
			if err != nil {
				return nil, err
			}
			base := cur.Name
			ok := s.Name == base
			if cur.Type == "histogram" || cur.Type == "summary" {
				ok = ok || s.Name == base+"_bucket" || s.Name == base+"_sum" || s.Name == base+"_count"
			}
			if !ok {
				return nil, fmt.Errorf("metrics: line %d: sample %q under family %q", lineNo, s.Name, base)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: read exposition: %w", err)
	}
	if pendingHelp != "" {
		return nil, fmt.Errorf("metrics: trailing HELP for %q without TYPE", pendingName)
	}
	return fams, nil
}

// parseSampleLine parses `name{k="v",...} value` with full escape handling.
func parseSampleLine(lineNo int, line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	bad := func(format string, args ...any) (Sample, error) {
		return Sample{}, fmt.Errorf("metrics: line %d: "+format, append([]any{lineNo}, args...)...)
	}
	i := 0
	for i < len(line) {
		c := line[i]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !alpha {
			break
		}
		i++
	}
	if i == 0 {
		return bad("no metric name in %q", line)
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return bad("unterminated label block")
			}
			if line[i] == '}' {
				i++
				break
			}
			eq := strings.IndexByte(line[i:], '=')
			if eq < 0 {
				return bad("label without =")
			}
			key := line[i : i+eq]
			i += eq + 1
			if i >= len(line) || line[i] != '"' {
				return bad("unquoted label value")
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return bad("unterminated label value")
				}
				if line[i] == '\\' {
					if i+1 >= len(line) {
						return bad("dangling escape")
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return bad("invalid escape \\%c", line[i+1])
					}
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				val.WriteByte(line[i])
				i++
			}
			if _, dup := s.Labels[key]; dup {
				return bad("duplicate label %q", key)
			}
			s.Labels[key] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return bad("no space before value in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[i:]), 64)
	if err != nil {
		return bad("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// FindFamily returns the family with the given name, if present.
func FindFamily(fams []Family, name string) (Family, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// FindSample returns the first sample named name (a family name or a
// histogram's _bucket/_sum/_count series) whose label set includes every
// given ("key", "value", ...) pair. Subset matching is deliberate: a caller
// asserting on result="accepted" should not break when a tenant label is
// added to the series.
func FindSample(fams []Family, name string, labelKV ...string) (Sample, bool) {
	if len(labelKV)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for i := 0; i < len(labelKV); i += 2 {
				if s.Labels[labelKV[i]] != labelKV[i+1] {
					match = false
					break
				}
			}
			if match {
				return s, true
			}
		}
	}
	return Sample{}, false
}

// histSeries tracks the scrape-contract state of one histogram series (one
// non-le label combination) while CheckHistogram walks a family.
type histSeries struct {
	prevCount float64
	prevBound float64
	infBucket float64
	sum       float64
	count     float64
	haveInf   bool
	haveSum   bool
	haveCount bool
}

// CheckHistogram validates the scrape contract of one histogram family. A
// family holds one series per non-le label combination (e.g. per route);
// each series must have strictly increasing bucket bounds, cumulative
// non-decreasing counts, and a final +Inf bucket equal to its _count. It
// returns the count and sum totalled across every series.
func CheckHistogram(f Family) (count float64, sum float64, err error) {
	if f.Type != "histogram" {
		return 0, 0, fmt.Errorf("metrics: %s: type %q, want histogram", f.Name, f.Type)
	}
	series := map[string]*histSeries{}
	var order []string
	get := func(labels map[string]string) *histSeries {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		id := b.String()
		h, ok := series[id]
		if !ok {
			h = &histSeries{prevCount: -1, prevBound: math.Inf(-1)}
			series[id] = h
			order = append(order, id)
		}
		return h
	}
	for _, s := range f.Samples {
		h := get(s.Labels)
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return 0, 0, fmt.Errorf("metrics: %s: bucket without le label", f.Name)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
				h.infBucket = s.Value
				h.haveInf = true
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return 0, 0, fmt.Errorf("metrics: %s: bad le %q", f.Name, le)
				}
				bound = b
			}
			if bound <= h.prevBound {
				return 0, 0, fmt.Errorf("metrics: %s: bucket bounds not increasing (%v after %v)", f.Name, bound, h.prevBound)
			}
			if s.Value < h.prevCount {
				return 0, 0, fmt.Errorf("metrics: %s: cumulative counts decreased (%v after %v)", f.Name, s.Value, h.prevCount)
			}
			h.prevCount, h.prevBound = s.Value, bound
		case f.Name + "_sum":
			if h.haveSum {
				return 0, 0, fmt.Errorf("metrics: %s: duplicate _sum for one series", f.Name)
			}
			h.sum, h.haveSum = s.Value, true
		case f.Name + "_count":
			if h.haveCount {
				return 0, 0, fmt.Errorf("metrics: %s: duplicate _count for one series", f.Name)
			}
			h.count, h.haveCount = s.Value, true
		default:
			return 0, 0, fmt.Errorf("metrics: %s: unexpected sample %q", f.Name, s.Name)
		}
	}
	if len(series) == 0 {
		return 0, 0, fmt.Errorf("metrics: %s: histogram family has no samples", f.Name)
	}
	for _, id := range order {
		h := series[id]
		if !h.haveInf || !h.haveSum || !h.haveCount {
			return 0, 0, fmt.Errorf("metrics: %s{%s}: missing +Inf/_sum/_count (%v %v %v)", f.Name, strings.TrimSuffix(id, ","), h.haveInf, h.haveSum, h.haveCount)
		}
		if h.infBucket != h.count {
			return 0, 0, fmt.Errorf("metrics: %s{%s}: +Inf bucket %v != count %v", f.Name, strings.TrimSuffix(id, ","), h.infBucket, h.count)
		}
		count += h.count
		sum += h.sum
	}
	return count, sum, nil
}
