package mecache

import (
	"mecache/internal/server"
)

// Serving-layer types: the online dimension of the market, where providers
// arrive and depart over an HTTP API against a long-running daemon instead
// of inside a virtual-time simulation.
type (
	// ServerConfig parameterizes the market daemon (seed, topology size,
	// epoch interval, failover policy, snapshot path).
	ServerConfig = server.Config
	// MarketServer is the daemon: a single-writer event loop over the
	// market with a JSON HTTP API and Prometheus metrics.
	MarketServer = server.Server
	// MarketView is the daemon's immutable read snapshot.
	MarketView = server.View
	// PlacedProvider is one provider's entry in a MarketView.
	PlacedProvider = server.ProviderView
)

// DefaultServerConfig returns a daemon over the paper's Section IV setup
// with manual epochs and no persistence.
func DefaultServerConfig(seed uint64) ServerConfig { return server.DefaultConfig(seed) }

// NewMarketServer builds a market daemon; call Start, serve Handler, and
// Stop it when done.
func NewMarketServer(cfg ServerConfig) (*MarketServer, error) { return server.New(cfg) }
