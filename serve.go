package mecache

import (
	"mecache/internal/server"
	"mecache/internal/tenant"
)

// Serving-layer types: the online dimension of the market, where providers
// arrive and depart over an HTTP API against a long-running daemon instead
// of inside a virtual-time simulation.
type (
	// ServerConfig parameterizes the market daemon (seed, topology size,
	// epoch interval, failover policy, snapshot path).
	ServerConfig = server.Config
	// MarketServer is the daemon: a single-writer event loop over the
	// market with a JSON HTTP API and Prometheus metrics.
	MarketServer = server.Server
	// MarketView is the daemon's immutable read snapshot.
	MarketView = server.View
	// PlacedProvider is one provider's entry in a MarketView.
	PlacedProvider = server.ProviderView
	// TenantRegistry shards the daemon: many independent markets in one
	// process, keyed by tenant ID and routed by a /v1/t/{tenant}/ prefix,
	// with LRU eviction and lazy rehydration under a resident cap.
	TenantRegistry = tenant.Registry
	// TenantConfig parameterizes a TenantRegistry: the per-tenant daemon
	// template, the default tenant the bare /v1/ API aliases, and the
	// resident cap.
	TenantConfig = tenant.Config
)

// DefaultTenant is the tenant the bare /v1/ routes alias.
const DefaultTenant = tenant.DefaultTenant

// DefaultServerConfig returns a daemon over the paper's Section IV setup
// with manual epochs and no persistence.
func DefaultServerConfig(seed uint64) ServerConfig { return server.DefaultConfig(seed) }

// NewMarketServer builds a market daemon; call Start, serve Handler, and
// Stop it when done.
func NewMarketServer(cfg ServerConfig) (*MarketServer, error) { return server.New(cfg) }

// NewTenantRegistry builds a multi-tenant daemon; serve Handler and Stop
// it when done. Tenants hydrate lazily on first request.
func NewTenantRegistry(cfg TenantConfig) (*TenantRegistry, error) { return tenant.NewRegistry(cfg) }
