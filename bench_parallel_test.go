// Benchmarks for the deterministic worker-pool execution layer: the same
// restart search and PoA sweep at serial width and at one worker per CPU.
// The outputs are bit-identical by construction (see internal/parallel), so
// the only difference between the Serial and Parallel variants of each pair
// is wall-clock time; on a 4-core runner the parallel PoA sweep finishes
// more than 2x faster at Restarts=32.
package mecache_test

import (
	"testing"

	"mecache"
)

// benchNashSearch times the 32-restart worst-equilibrium hunt behind the
// empirical-PoA points.
func benchNashSearch(b *testing.B, parallelism int) {
	m := benchMarket(b, 3, 100, 40)
	base := mecache.AllRemote(m)
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mecache.NewGame(m)
		g.Parallelism = parallelism
		_, c, err := mecache.WorstNashSocialCost(g, base, 11, 32, 0)
		if err != nil {
			b.Fatal(err)
		}
		cost = c
	}
	b.ReportMetric(cost, "worst-ne-cost")
}

func BenchmarkNashSearchSerial(b *testing.B)   { benchNashSearch(b, 1) }
func BenchmarkNashSearchParallel(b *testing.B) { benchNashSearch(b, 0) }

// benchPoAStudy times the full empirical-PoA figure: both the (xi, rep)
// sweep and the per-point restart searches fan out on the pool.
func benchPoAStudy(b *testing.B, parallelism int) {
	cfg := mecache.DefaultPoA(7)
	cfg.XiValues = []float64{0, 0.5, 1}
	cfg.NumProviders = 5
	cfg.Restarts = 32
	cfg.Reps = 2
	cfg.Parallelism = parallelism
	var poa float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := mecache.PoAStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		poa = fig.Tables[0].Series[0].Y[0]
	}
	b.ReportMetric(poa, "poa-xi0")
}

func BenchmarkPoAStudySerial(b *testing.B)   { benchPoAStudy(b, 1) }
func BenchmarkPoAStudyParallel(b *testing.B) { benchPoAStudy(b, 0) }

// benchFigF times the resilience sweep, whose 24 dynamic-market runs are
// fully independent tasks.
func benchFigF(b *testing.B, parallelism int) {
	cfg := mecache.DefaultFigF(5)
	cfg.Reps = 2
	cfg.Parallelism = parallelism
	var avail float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := mecache.FigF(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avail = fig.Tables[0].Series[0].Y[0]
	}
	b.ReportMetric(avail, "availability")
}

func BenchmarkFigFSerial(b *testing.B)   { benchFigF(b, 1) }
func BenchmarkFigFParallel(b *testing.B) { benchFigF(b, 0) }
