// poa empirically measures the Price of Anarchy of the service-caching
// Stackelberg game and compares it against the Theorem-1 bound
// (2δκ/(1-v))·(1/(4v)+1-ξ): how much does provider selfishness really cost,
// and how much of it does coordination claw back?
//
// The markets are kept small so the social optimum can be enumerated
// exactly, which makes the reported PoA exact rather than a bound ratio.
//
// Run with:
//
//	go run ./examples/poa
package main

import (
	"fmt"
	"log"
	"os"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sweep the coordinated fraction: with xi = 0 the market is fully
	// selfish; with xi = 1 the leader pins everyone to the Appro solution.
	cfg := mecache.DefaultPoA(11)
	cfg.NumProviders = 6
	cfg.XiValues = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	cfg.Restarts = 30
	cfg.Reps = 3

	fig, err := mecache.PoAStudy(cfg)
	if err != nil {
		return err
	}
	if err := fig.Render(os.Stdout); err != nil {
		return err
	}

	// Zoom into one market for intuition: equilibrium vs optimum.
	wl := mecache.DefaultWorkload(23)
	wl.NumProviders = 6
	market, err := mecache.GenerateMarketGTITM(50, wl)
	if err != nil {
		return err
	}
	optPl, opt, err := mecache.ExactOptimum(market, 1<<24)
	if err != nil {
		return err
	}
	g := mecache.NewGame(market)
	dyn, err := mecache.BestResponseDynamics(g, mecache.AllRemote(market), 5, 0)
	if err != nil {
		return err
	}
	ne := market.SocialCost(dyn.Placement)
	fmt.Printf("one market, %d providers:\n", len(market.Providers))
	fmt.Printf("  social optimum   $%.3f  placement %v\n", opt, optPl)
	fmt.Printf("  Nash equilibrium $%.3f  placement %v\n", ne, dyn.Placement)
	fmt.Printf("  realized PoA     %.4f\n", ne/opt)
	delta, kappa := market.DeltaKappa()
	fmt.Printf("  Theorem-1 bound  %.2f (delta=%.1f kappa=%.1f, xi=0)\n",
		mecache.PoABound(delta, kappa, 0), delta, kappa)
	return nil
}
