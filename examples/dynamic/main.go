// dynamic simulates the temporal service market: providers arrive as a
// Poisson process, cache their services temporarily, and depart; every
// epoch the infrastructure provider re-runs LCF over whoever is active.
// The run reports the market's stability — time-averaged social cost and
// how much placement churn the re-optimizations cause — and compares the
// coordinated market against a purely selfish one.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("dynamic service market, 200 virtual time units")
	fmt.Println("arrivals ~ Poisson(1.0/t), lifetimes ~ Exp(mean 40), LCF epoch 20")
	fmt.Println()
	fmt.Println("scenario               avg social cost  cached%  reconfig rate  peak active")
	fmt.Println("----------------------------------------------------------------------------")

	type scenario struct {
		name       string
		epoch      float64
		xi         float64
		hysteresis bool
	}
	for _, sc := range []scenario{
		{"selfish only", 0, 0, false},
		{"LCF every 20, xi=0.3", 20, 0.3, false},
		{"LCF every 20, xi=0.7", 20, 0.7, false},
		{"LCF every 5,  xi=0.7", 5, 0.7, false},
		{"LCF/5 + hysteresis", 5, 0.7, true},
	} {
		var cost, cached, churn, peak float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			cfg := mecache.DefaultDynamicConfig(uint64(rep) + 100)
			cfg.Epoch = sc.epoch
			cfg.Xi = sc.xi
			cfg.MigrationAware = sc.hysteresis
			sim, err := mecache.NewDynamicSimulator(nil, cfg)
			if err != nil {
				return err
			}
			m, err := sim.Run()
			if err != nil {
				return err
			}
			cost += m.TimeAvgSocialCost
			cached += m.CachedFraction
			churn += m.ReconfigurationRate
			peak += float64(m.PeakActive)
		}
		fmt.Printf("%-22s %15.2f  %6.1f%%  %12.4f  %11.0f\n",
			sc.name, cost/reps, 100*cached/reps, churn/reps, peak/reps)
	}
	fmt.Println()
	fmt.Println("reconfig rate = fraction of active providers moved per epoch;")
	fmt.Println("lower cost with low churn is the 'stable market' the paper targets.")
	return nil
}
