// replication explores "to cache one or to cache many": a VR provider with
// user groups spread across the city compares serving everyone remotely,
// caching a single instance (the paper's setting), and caching several
// replicas with nearest-instance routing (the direction of the authors'
// follow-up work [26]).
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := mecache.DefaultWorkload(31)
	cfg.NumProviders = 10
	market, err := mecache.GenerateMarketGTITM(200, cfg)
	if err != nil {
		return err
	}

	// Background: the other providers already cached via LCF; our provider
	// plans against that congestion.
	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		return err
	}
	loads := market.Loads(res.Placement)

	// Recast provider 0 as a heavyweight VR service: 60 concurrent request
	// streams moving 1 GB each. (The replica planner reads the provider
	// fields directly, so mutating the generated market is safe here.)
	market.Providers[0].Requests = 60
	market.Providers[0].TrafficGBPerReq = 1.0
	market.Providers[0].DataGB = 5
	market.Providers[0].InstCost = 0.4

	planner, err := mecache.NewReplicaPlanner(market, loads)
	if err != nil {
		return err
	}

	// Provider 0's users cluster at four distant points of the city.
	groups := mecache.UniformUserGroups([]int{8, 57, 121, 190})

	fmt.Println("replica budget   replicas placed   provider cost   serving split")
	fmt.Println("--------------------------------------------------------------------")
	var prev float64
	for budget := 0; budget <= 4; budget++ {
		plan, err := planner.PlanReplicas(0, groups, budget)
		if err != nil {
			return err
		}
		remote := 0
		for _, a := range plan.Assignment {
			if a == -1 {
				remote++
			}
		}
		marginal := ""
		if budget > 0 {
			marginal = fmt.Sprintf("(saves $%.2f)", prev-plan.Cost)
		}
		fmt.Printf("%14d   %15d   $%11.2f   %d/%d groups remote %s\n",
			budget, len(plan.Cloudlets), plan.Cost, remote, len(groups), marginal)
		prev = plan.Cost
	}
	fmt.Println()
	fmt.Println("diminishing returns: each added replica saves less — the greedy stops")
	fmt.Println("as soon as instantiation + update overhead exceeds the access savings.")
	return nil
}
