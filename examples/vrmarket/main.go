// vrmarket models the paper's motivating scenario: a 5G service market
// where VR/AR providers with stringent motion-to-photon budgets decide
// whether to cache their rendering services at stadium/museum cloudlets or
// keep serving from the remote cloud.
//
// The example builds the market by hand (rather than via the workload
// generator) to show the full public model API: heavy VR providers with
// large per-request traffic, lighter AR providers, and a video-analytics
// long-tail, all competing for two well-placed cloudlets.
//
// Run with:
//
//	go run ./examples/vrmarket
package main

import (
	"fmt"
	"log"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A city-scale edge network.
	topo, err := mecache.GTITM(7, 120)
	if err != nil {
		return err
	}

	// Two venue cloudlets (a stadium and a museum) and one big downtown
	// cloudlet, plus a remote cloud region reached over a long backhaul.
	cloudlets := []mecache.Cloudlet{
		{ // stadium: big, congested events
			Node: 30, NumVMs: 30, ComputeCap: 30, BandwidthCap: 2400,
			Alpha: 0.8, Beta: 0.9, FixedBandwidthCost: 0.4,
			ProcPricePerGB: 0.18, TransPricePerGBHop: 0.08,
		},
		{ // museum: small but cheap
			Node: 55, NumVMs: 16, ComputeCap: 16, BandwidthCap: 900,
			Alpha: 0.3, Beta: 0.2, FixedBandwidthCost: 0.15,
			ProcPricePerGB: 0.16, TransPricePerGBHop: 0.06,
		},
		{ // downtown aggregation site
			Node: 80, NumVMs: 24, ComputeCap: 24, BandwidthCap: 1800,
			Alpha: 0.5, Beta: 0.5, FixedBandwidthCost: 0.25,
			ProcPricePerGB: 0.2, TransPricePerGBHop: 0.09,
		},
	}
	dcs := []mecache.DataCenter{
		{Node: 0, BackhaulHops: 12, ProcPricePerGB: 0.21, TransPricePerGBHop: 0.1},
	}
	net, err := mecache.NewNetwork(topo, cloudlets, dcs)
	if err != nil {
		return err
	}

	// The provider mix the introduction motivates.
	var providers []mecache.Provider
	kinds := []string{}
	// Three heavyweight VR providers: few users, huge per-request frames.
	for i := 0; i < 3; i++ {
		providers = append(providers, mecache.Provider{
			Requests: 20, ComputePerReq: 0.15, BandwidthPerReq: 8,
			InstCost: 1.2, TrafficGBPerReq: 0.25, DataGB: 5, UpdateRatio: 0.1,
			HomeDC: 0, AttachNode: 28 + i,
		})
		kinds = append(kinds, "VR")
	}
	// Five AR providers: many light requests near the museum.
	for i := 0; i < 5; i++ {
		providers = append(providers, mecache.Provider{
			Requests: 40, ComputePerReq: 0.04, BandwidthPerReq: 1.5,
			InstCost: 0.8, TrafficGBPerReq: 0.03, DataGB: 2, UpdateRatio: 0.1,
			HomeDC: 0, AttachNode: 52 + i,
		})
		kinds = append(kinds, "AR")
	}
	// Four video-analytics providers spread across town.
	for i := 0; i < 4; i++ {
		providers = append(providers, mecache.Provider{
			Requests: 25, ComputePerReq: 0.06, BandwidthPerReq: 2.5,
			InstCost: 1.0, TrafficGBPerReq: 0.08, DataGB: 3, UpdateRatio: 0.15,
			HomeDC: 0, AttachNode: 75 + i,
		})
		kinds = append(kinds, "video")
	}
	market, err := mecache.NewMarket(net, providers)
	if err != nil {
		return err
	}

	// The infrastructure provider coordinates the heavy hitters.
	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.5, Seed: 3})
	if err != nil {
		return err
	}

	names := []string{"stadium", "museum", "downtown"}
	fmt.Println("provider  kind   decision        own cost")
	fmt.Println("------------------------------------------")
	for l, s := range res.Placement {
		where := "stay remote"
		if s != mecache.Remote {
			where = "cache @ " + names[s]
		}
		coordinated := ""
		for _, c := range res.Coordinated {
			if c == l {
				coordinated = " (coordinated)"
			}
		}
		fmt.Printf("%8d  %-5s  %-14s  $%6.2f%s\n",
			l, kinds[l], where, market.ProviderCost(res.Placement, l), coordinated)
	}
	fmt.Printf("\nsocial cost: $%.2f  (Appro bound was $%.2f)\n", res.SocialCost, res.Appro.SocialCost)

	// What would a fully selfish market have done?
	g := mecache.NewGame(market)
	dyn, err := mecache.BestResponseDynamics(g, mecache.AllRemote(market), 3, 0)
	if err != nil {
		return err
	}
	fmt.Printf("fully selfish Nash equilibrium: $%.2f (%+.1f%% vs LCF)\n",
		market.SocialCost(dyn.Placement),
		100*(market.SocialCost(dyn.Placement)/res.SocialCost-1))
	return nil
}
