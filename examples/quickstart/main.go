// Quickstart: generate a service market on a GT-ITM network, run the
// paper's LCF mechanism against both baselines, and print the comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 250-node edge network with 25 cloudlets, 5 remote data centers and
	// 100 network service providers, drawn with the paper's Section IV-A
	// parameter ranges.
	cfg := mecache.DefaultWorkload(42)
	market, err := mecache.GenerateMarketGTITM(250, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("market: %d providers, %d cloudlets, %d data centers\n",
		len(market.Providers), market.Net.NumCloudlets(), len(market.Net.DCs))

	// LCF: the infrastructure provider coordinates the 70% of providers
	// with the largest caching cost (xi = 0.7); the rest play the
	// congestion game selfishly to a Nash equilibrium.
	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		return err
	}
	cached := 0
	for _, s := range res.Placement {
		if s != mecache.Remote {
			cached++
		}
	}
	fmt.Printf("\nLCF: social cost $%.2f (%d/%d services cached, %d coordinated)\n",
		res.SocialCost, cached, len(market.Providers), len(res.Coordinated))
	fmt.Printf("     coordinated pay $%.2f, selfish pay $%.2f\n", res.CoordinatedCost, res.SelfishCost)
	fmt.Printf("     Appro inner solution: $%.2f via %v solver\n",
		res.Appro.SocialCost, res.Appro.SolverUsed)
	fmt.Printf("     approximation guarantee (Lemma 2): %.0fx\n", mecache.ApproximationRatio(market))

	// The two uncoordinated baselines from the evaluation.
	jo, err := mecache.JoOffloadCache(market, 1)
	if err != nil {
		return err
	}
	off, err := mecache.OffloadCache(market)
	if err != nil {
		return err
	}
	fmt.Printf("\nJoOffloadCache: social cost $%.2f\n", jo.SocialCost)
	fmt.Printf("OffloadCache:   social cost $%.2f\n", off.SocialCost)
	fmt.Printf("\nLCF saves %.1f%% vs JoOffloadCache and %.1f%% vs OffloadCache\n",
		100*(1-res.SocialCost/jo.SocialCost), 100*(1-res.SocialCost/off.SocialCost))
	return nil
}
