// testbed drives the emulated SDN test-bed end to end: assemble the
// five-switch underlay and AS1755 overlay, run the three algorithms as
// controller applications, deploy their placements as flow rules, and
// measure cost and latency in virtual time — the Section IV-C pipeline.
//
// Run with:
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"log"

	"mecache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := mecache.DefaultTestbedConfig(9)
	cfg.Workload.NumProviders = 60
	tb, err := mecache.NewTestbed(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("underlay: %d hardware switches, %d servers\n",
		tb.Underlay.NumSwitches(), len(tb.Underlay.Servers))
	for i, sw := range tb.Underlay.Switches {
		fmt.Printf("  switch %d: %s\n", i, sw.Model)
	}
	fmt.Printf("overlay:  %s (%d OVS nodes, %d VXLAN links), %d providers\n\n",
		tb.Overlay.Name, tb.Overlay.N(), tb.Overlay.M(), len(tb.Market.Providers))

	type algo struct {
		name string
		run  func() (mecache.Placement, error)
	}
	algos := []algo{
		{"LCF", func() (mecache.Placement, error) {
			r, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
		{"JoOffloadCache", func() (mecache.Placement, error) {
			r, err := mecache.JoOffloadCache(tb.Market, 1)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
		{"OffloadCache", func() (mecache.Placement, error) {
			r, err := mecache.OffloadCache(tb.Market)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
	}

	fmt.Println("algorithm        rules  measured cost  mean latency  max latency")
	fmt.Println("------------------------------------------------------------------")
	for _, a := range algos {
		pl, err := a.run()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		dep, err := tb.Deploy(pl)
		if err != nil {
			return fmt.Errorf("deploy %s: %w", a.name, err)
		}
		meas, err := tb.Measure(dep, 7)
		if err != nil {
			return fmt.Errorf("measure %s: %w", a.name, err)
		}
		fmt.Printf("%-15s %6d  $%12.2f  %9.3f ms  %9.3f ms\n",
			a.name, dep.Controller.TotalRules(), meas.MeasuredSocialCost,
			meas.MeanLatencyMs, meas.MaxLatencyMs)
	}

	// Show one installed forwarding path, traced hop by hop from the flow
	// tables, to make the controller state tangible.
	r, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		return err
	}
	dep, err := tb.Deploy(r.Placement)
	if err != nil {
		return err
	}
	for l, s := range r.Placement {
		if s == mecache.Remote {
			continue
		}
		p := tb.Market.Providers[l]
		path, err := dep.Controller.TracePath(l, mecache.RequestFlow, p.AttachNode)
		if err != nil {
			return err
		}
		fmt.Printf("\nexample flow: provider %d, attach node %d -> cloudlet %d (node %d)\n",
			l, p.AttachNode, s, tb.Market.Net.Cloudlets[s].Node)
		fmt.Printf("  installed path: %v (%d hops)\n", path, len(path)-1)
		break
	}

	// Resilience drill: the paper wires every switch to at least two others
	// so traffic survives one switch failure. Verify, then fail the busiest
	// switch and observe the latency penalty of the rerouted transit.
	ok, err := tb.Underlay.SurvivesSingleSwitchFailure()
	if err != nil {
		return err
	}
	fmt.Printf("\nunderlay survives any single switch failure: %v\n", ok)
	baseline, err := tb.Measure(dep, 7)
	if err != nil {
		return err
	}
	if err := tb.Underlay.FailSwitch(2); err != nil {
		return err
	}
	degraded, err := tb.Measure(dep, 7)
	if err != nil {
		return err
	}
	if err := tb.Underlay.RestoreSwitch(2); err != nil {
		return err
	}
	fmt.Printf("failing switch 2 (%s): %d/%d request flows unreachable, survivors' mean latency %.3f ms (was %.3f ms)\n",
		tb.Underlay.Switches[2].Model, degraded.FlowsUnreachable,
		degraded.FlowsUnreachable+degraded.FlowsCompleted,
		degraded.MeanLatencyMs, baseline.MeanLatencyMs)
	fmt.Println("services hosted behind the failed switch need re-deployment; transit-only traffic reroutes.")
	return nil
}
