package mecache_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mecache"
)

func TestFacadeFigureDrivers(t *testing.T) {
	// Exercise every figure wrapper at minimum scale.
	f3 := mecache.DefaultFig3(1)
	f3.SelfishFractions = []float64{0.5}
	f3.Size = 50
	f3.NumProviders = 15
	f3.Reps = 1
	if _, err := mecache.Fig3(f3); err != nil {
		t.Fatal(err)
	}
	f5 := mecache.DefaultFig5(1)
	f5.Providers = []int{10}
	f5.Reps = 1
	if _, err := mecache.Fig5(f5); err != nil {
		t.Fatal(err)
	}
	f6 := mecache.DefaultFig6(1)
	f6.SelfishFractions = []float64{0.5}
	f6.RequestCounts = []int{10}
	f6.NetworkSizes = []int{50}
	f6.UpdateRatios = []float64{0.1}
	f6.BaseProviders = 10
	f6.Reps = 1
	if _, err := mecache.Fig6(f6); err != nil {
		t.Fatal(err)
	}
	f7 := mecache.DefaultFig7(1)
	f7.AMaxValues = []float64{3}
	f7.BMaxValues = []float64{80}
	f7.Providers = 10
	f7.Reps = 1
	if _, err := mecache.Fig7(f7); err != nil {
		t.Fatal(err)
	}
	poa := mecache.DefaultPoA(1)
	poa.NumProviders = 3
	poa.XiValues = []float64{0.5}
	poa.Restarts = 3
	poa.Reps = 1
	if _, err := mecache.PoAStudy(poa); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSVGHelpers(t *testing.T) {
	cfg := mecache.DefaultFig2(1)
	cfg.Sizes = []int{50}
	cfg.NumProviders = 10
	cfg.Reps = 1
	fig, err := mecache.Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mecache.RenderSVG(&fig.Tables[0], &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Fatal("RenderSVG did not produce SVG")
	}
	dir := t.TempDir()
	files, err := mecache.WriteSVGs(fig, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(fig.Tables) {
		t.Fatalf("wrote %d files for %d panels", len(files), len(fig.Tables))
	}
	for _, f := range files {
		if filepath.Ext(f) != ".svg" {
			t.Fatalf("unexpected extension on %s", f)
		}
		if _, err := os.Stat(f); err != nil {
			t.Fatal(err)
		}
	}
	// CSV rendering via the facade type alias.
	var csvBuf bytes.Buffer
	if err := fig.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "LCF") {
		t.Fatal("CSV missing series")
	}
}

func TestFacadeDynamicSimulator(t *testing.T) {
	cfg := mecache.DefaultDynamicConfig(2)
	cfg.Horizon = 30
	sim, err := mecache.NewDynamicSimulator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
}

func TestFacadeCongestionModels(t *testing.T) {
	market, err := mecache.GenerateMarketGTITM(50, func() mecache.WorkloadConfig {
		cfg := mecache.DefaultWorkload(5)
		cfg.NumProviders = 10
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range []mecache.CongestionModel{
		mecache.LinearCongestion{},
		mecache.PolynomialCongestion{Degree: 2},
		mecache.ExponentialCongestion{Base: 1.3},
	} {
		if err := market.SetCongestionModel(cm); err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
		if _, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.5, Seed: 1,
			Appro: mecache.ApproOptions{Solver: mecache.SolverTransport}}); err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
	}
}

func TestFacadeCoordinationStrategies(t *testing.T) {
	market, err := mecache.GenerateMarketGTITM(60, func() mecache.WorkloadConfig {
		cfg := mecache.DefaultWorkload(6)
		cfg.NumProviders = 16
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []mecache.Coordination{
		mecache.CoordLargestCostFirst, mecache.CoordSmallestCostFirst,
		mecache.CoordLargestDemandFirst, mecache.CoordRandom,
	} {
		res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.5, Seed: 1, Strategy: st})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if len(res.Coordinated) != 8 {
			t.Fatalf("%v coordinated %d", st, len(res.Coordinated))
		}
	}
}

func TestFacadeRunAllAndExactOptimum(t *testing.T) {
	cfg := mecache.DefaultWorkload(7)
	cfg.NumProviders = 5
	market, err := mecache.GenerateMarketGTITM(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mecache.RunAll(market, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("RunAll returned %d algorithms", len(out))
	}
	pl, opt, err := mecache.ExactOptimum(market, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 || len(pl) != 5 {
		t.Fatalf("optimum %v placement %v", opt, pl)
	}
	if out[mecache.AlgoLCF].Social < opt-1e-9 {
		t.Fatal("LCF beat the exact optimum")
	}
}

func TestFacadeApproximationHelpers(t *testing.T) {
	cfg := mecache.DefaultWorkload(8)
	cfg.NumProviders = 10
	market, err := mecache.GenerateMarketGTITM(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mecache.Appro(market, mecache.ApproOptions{CongestionBlind: true, Solver: mecache.SolverTransport})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReducedCost <= 0 {
		t.Fatalf("reduced cost %v", res.ReducedCost)
	}
	if mecache.ApproximationRatio(market) <= 0 {
		t.Fatal("approximation ratio not positive")
	}
}

func TestFacadeWeightedGame(t *testing.T) {
	cfg := mecache.DefaultWorkload(9)
	cfg.NumProviders = 15
	market, err := mecache.GenerateMarketGTITM(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mecache.NewWeightedGame(market)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := mecache.WeightedBestResponseDynamics(g, mecache.AllRemote(market), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Converged || !g.IsNash(dyn.Placement) {
		t.Fatal("weighted dynamics did not reach a Nash equilibrium")
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	// Dynamic market under faults through the facade.
	cfg := mecache.DefaultDynamicConfig(3)
	cfg.Horizon = 40
	cfg.Fault = mecache.DefaultFaultConfig()
	cfg.Fault.CloudletMTBF = 20
	cfg.Fault.CloudletMTTR = 3
	cfg.Fault.Policy = mecache.PolicyReplace
	sim, err := mecache.NewDynamicSimulator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Availability <= 0 || m.Availability > 1 {
		t.Fatalf("availability %v outside (0,1]", m.Availability)
	}

	// Policy parsing round-trips through the facade.
	for _, p := range mecache.FailoverPolicies() {
		got, err := mecache.ParseFailoverPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("policy %v round-trip: got %v, err %v", p, got, err)
		}
	}

	// Test-bed fault measurement through the facade.
	tb, err := mecache.NewTestbed(mecache.DefaultTestbedConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := tb.MeasureUnderFaults(dep, 1, mecache.DefaultTestbedFaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if fm.SwitchFailures == 0 {
		t.Fatal("default testbed fault scenario injected nothing")
	}
}

func TestFacadeConstructorsRejectMisuse(t *testing.T) {
	// Parameter misuse that used to panic deep in the rng layer must come
	// back as descriptive errors from the facade constructors.
	cfg := mecache.DefaultWorkload(1)
	cfg.Requests.Lo, cfg.Requests.Hi = 0, 0
	if _, err := mecache.GenerateMarketGTITM(80, cfg); err == nil ||
		!strings.Contains(err.Error(), "Requests") {
		t.Fatalf("zero-request config: err = %v", err)
	}
	cfg = mecache.DefaultWorkload(1)
	cfg.DataGB.Lo, cfg.DataGB.Hi = 5, 1
	topo, err := mecache.GTITM(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mecache.GenerateMarket(topo, cfg); err == nil ||
		!strings.Contains(err.Error(), "DataGB") {
		t.Fatalf("inverted DataGB range: err = %v", err)
	}
	dcfg := mecache.DefaultDynamicConfig(1)
	dcfg.Workload.CloudletFraction = 2
	if _, err := mecache.NewDynamicSimulator(nil, dcfg); err == nil {
		t.Fatal("dynamic simulator accepted CloudletFraction 2")
	}
}
