package mecache

import (
	"mecache/internal/baselines"
	"mecache/internal/core"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/rng"
)

// Algorithm option and result types.
type (
	// ApproOptions configures Algorithm 1 (Appro).
	ApproOptions = core.ApproOptions
	// ApproResult is the outcome of Algorithm 1.
	ApproResult = core.ApproResult
	// LCFOptions configures Algorithm 2 (LCF).
	LCFOptions = core.LCFOptions
	// LCFResult is the outcome of Algorithm 2.
	LCFResult = core.LCFResult
	// Solver selects Appro's GAP engine.
	Solver = core.Solver
	// Coordination selects which providers the Stackelberg leader pins.
	Coordination = core.Coordination
	// BaselineResult is the outcome of a baseline algorithm.
	BaselineResult = baselines.Result
)

// Coordination strategies for LCFOptions.Strategy.
const (
	// CoordLargestCostFirst is the paper's Largest Cost First (default).
	CoordLargestCostFirst = core.CoordLargestCostFirst
	// CoordSmallestCostFirst coordinates the cheapest providers (ablation).
	CoordSmallestCostFirst = core.CoordSmallestCostFirst
	// CoordLargestDemandFirst coordinates the biggest resource consumers.
	CoordLargestDemandFirst = core.CoordLargestDemandFirst
	// CoordRandom coordinates a uniform random subset.
	CoordRandom = core.CoordRandom
)

// Appro GAP engines.
const (
	// SolverAuto picks by reduction size.
	SolverAuto = core.SolverAuto
	// SolverTransport is the exact min-cost-flow slotted solver.
	SolverTransport = core.SolverTransport
	// SolverShmoysTardos is the LP-rounding 2-approximation.
	SolverShmoysTardos = core.SolverShmoysTardos
)

// Appro runs Algorithm 1: the approximation algorithm for the service
// caching problem with non-selfish (coordinated) providers.
func Appro(m *Market, opts ApproOptions) (*ApproResult, error) { return core.Appro(m, opts) }

// LCF runs Algorithm 2: the approximation-restricted Stackelberg strategy
// with Largest-Cost-First coordination.
func LCF(m *Market, opts LCFOptions) (*LCFResult, error) { return core.LCF(m, opts) }

// ApproximationRatio returns the Lemma-2 guarantee 2·δ·κ for a market.
func ApproximationRatio(m *Market) float64 { return core.ApproximationRatio(m) }

// JoOffloadCache runs the per-provider joint caching/offloading baseline
// (after [23], without cross-provider communication or update costs).
func JoOffloadCache(m *Market, seed uint64) (*BaselineResult, error) {
	return baselines.JoOffloadCache(m, seed)
}

// OffloadCache runs the greedy separate offload-then-cache baseline.
func OffloadCache(m *Market) (*BaselineResult, error) { return baselines.OffloadCache(m) }

// Game types for direct access to the congestion game.
type (
	// Game is the service-caching congestion game over a market.
	Game = game.Game
	// DynamicsResult reports a best-response dynamics run.
	DynamicsResult = game.DynamicsResult
)

// NewGame wraps a market as a congestion game with no pinned players.
func NewGame(m *Market) *Game { return game.New(m) }

// BestResponseDynamics runs randomized round-robin better-response dynamics
// on g from the init placement, seeded for reproducibility.
func BestResponseDynamics(g *Game, init Placement, seed uint64, maxRounds int) (DynamicsResult, error) {
	return g.BestResponseDynamics(init, rng.New(seed), maxRounds)
}

// WeightedGame is the asymmetric game variant: congestion scales with the
// total tenant weight (demand) instead of the tenant count.
type WeightedGame = game.WeightedGame

// NewWeightedGame wraps a market as the asymmetric weighted congestion game
// with demand-proportional weights (linear congestion model only).
func NewWeightedGame(m *Market) (*WeightedGame, error) { return game.NewWeighted(m) }

// WeightedBestResponseDynamics runs the weighted game's dynamics, seeded
// for reproducibility.
func WeightedBestResponseDynamics(g *WeightedGame, init Placement, seed uint64, maxRounds int) (DynamicsResult, error) {
	return g.BestResponseDynamics(init, rng.New(seed), maxRounds)
}

// WorstNashSocialCost hunts the costliest pure Nash equilibrium reachable
// from `restarts` random starts (the empirical-PoA search), seeded for
// reproducibility. Restarts fan out over g.Parallelism workers (0 = one
// per CPU, 1 = serial) with bit-identical results at any width.
func WorstNashSocialCost(g *Game, base Placement, seed uint64, restarts, maxRounds int) (Placement, float64, error) {
	return g.WorstNashSocialCost(base, rng.New(seed), restarts, maxRounds)
}

// BestNashSocialCost is the mirror search for the cheapest equilibrium
// (the empirical-PoS side), with the same parallel semantics.
func BestNashSocialCost(g *Game, base Placement, seed uint64, restarts, maxRounds int) (Placement, float64, error) {
	return g.BestNashSocialCost(base, rng.New(seed), restarts, maxRounds)
}

// ExactOptimum enumerates the social optimum of a small market exactly.
func ExactOptimum(m *Market, maxProfiles int) (Placement, float64, error) {
	return game.ExactOptimum(m, maxProfiles)
}

// PoABound evaluates Theorem 1's Price-of-Anarchy bound, minimized over v.
func PoABound(delta, kappa, xi float64) float64 { return game.PoABound(delta, kappa, xi) }

// AllRemote returns the placement in which every provider keeps its service
// in the remote cloud — the "not to cache" profile and the canonical
// starting point for best-response dynamics.
func AllRemote(m *Market) Placement {
	pl := make(Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mec.Remote
	}
	return pl
}
