package mecache_test

import (
	"bytes"
	"math"
	"testing"

	"mecache"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	market, err := mecache.GenerateMarketGTITM(100, mecache.DefaultWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SocialCost <= 0 {
		t.Fatalf("social cost %v", res.SocialCost)
	}
	jo, err := mecache.JoOffloadCache(market, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := mecache.OffloadCache(market)
	if err != nil {
		t.Fatal(err)
	}
	if res.SocialCost > jo.SocialCost || res.SocialCost > off.SocialCost {
		t.Fatalf("LCF (%v) should undercut JoOffloadCache (%v) and OffloadCache (%v)",
			res.SocialCost, jo.SocialCost, off.SocialCost)
	}
}

func TestPublicGameAPI(t *testing.T) {
	market, err := mecache.GenerateMarketGTITM(60, func() mecache.WorkloadConfig {
		cfg := mecache.DefaultWorkload(2)
		cfg.NumProviders = 20
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	g := mecache.NewGame(market)
	dyn, err := mecache.BestResponseDynamics(g, mecache.AllRemote(market), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Converged {
		t.Fatal("dynamics did not converge")
	}
	if !g.IsNash(dyn.Placement) {
		t.Fatal("not a Nash equilibrium")
	}
}

func TestPublicTopologyAPI(t *testing.T) {
	top, err := mecache.GTITM(1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 120 {
		t.Fatalf("GTITM size %d", top.N())
	}
	as := mecache.AS1755()
	if as.N() != 87 || as.M() != 161 {
		t.Fatalf("AS1755 shape %d/%d", as.N(), as.M())
	}
	wax, err := mecache.Waxman(2, 40, 0.4, 0.14)
	if err != nil {
		t.Fatal(err)
	}
	if wax.N() != 40 {
		t.Fatalf("Waxman size %d", wax.N())
	}
}

func TestPublicTestbedAPI(t *testing.T) {
	cfg := mecache.DefaultTestbedConfig(5)
	cfg.Workload.NumProviders = 15
	tb, err := mecache.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := tb.Measure(dep, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := tb.Market.SocialCost(res.Placement)
	if math.Abs(meas.MeasuredSocialCost-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("measured %v != model %v", meas.MeasuredSocialCost, want)
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	cfg := mecache.DefaultFig2(1)
	cfg.Sizes = []int{50}
	cfg.NumProviders = 20
	cfg.Reps = 1
	fig, err := mecache.Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestApproximationRatioAndPoABound(t *testing.T) {
	market, err := mecache.GenerateMarketGTITM(80, mecache.DefaultWorkload(3))
	if err != nil {
		t.Fatal(err)
	}
	ratio := mecache.ApproximationRatio(market)
	if ratio <= 1 {
		t.Fatalf("approximation ratio %v", ratio)
	}
	if b := mecache.PoABound(2, 3, 0.5); b <= 0 || math.IsInf(b, 0) {
		t.Fatalf("PoA bound %v", b)
	}
}

func TestManualMarketConstruction(t *testing.T) {
	top, err := mecache.GTITM(9, 50)
	if err != nil {
		t.Fatal(err)
	}
	net, err := mecache.NewNetwork(top,
		[]mecache.Cloudlet{{
			Node: 10, NumVMs: 20, ComputeCap: 20, BandwidthCap: 500,
			Alpha: 0.5, Beta: 0.5, FixedBandwidthCost: 0.2,
			ProcPricePerGB: 0.2, TransPricePerGBHop: 0.1,
		}},
		[]mecache.DataCenter{{Node: 0, BackhaulHops: 10, ProcPricePerGB: 0.2, TransPricePerGBHop: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	market, err := mecache.NewMarket(net, []mecache.Provider{{
		Requests: 20, ComputePerReq: 0.05, BandwidthPerReq: 2,
		InstCost: 1, TrafficGBPerReq: 0.05, DataGB: 2, UpdateRatio: 0.1,
		HomeDC: 0, AttachNode: 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mecache.Appro(market, mecache.ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := market.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
}
