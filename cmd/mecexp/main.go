// Command mecexp is the automated experiment runner: it expands a scenario
// matrix (policy × topology size × load pattern × fault rate × tenants ×
// seed reps), executes every combo against a freshly booted mecd child —
// fresh snapshot/WAL tempdir, readiness-gated boot, serial mecload driving,
// /metrics, /v1/debug/trace, and /v1/debug/spans scraping — and archives
// results/<stamp>/<combo-slug>/{config.json,summary.json,metrics.prom,
// trace.json,spans.json,mecd.log,mecload.log} plus a top-level index.json
// and table.txt.
//
// Every combo derives its randomness from the matrix seed and its own cell
// coordinates, so the deterministic section of each summary.json is
// byte-identical across re-runs at any -parallel width (wall-clock fields
// are confined to the summary's "wallClock" object).
//
// Usage:
//
//	mecexp -out results -policies lcf -sizes 50 -loads steady -reps 2
//	mecexp -out results -policies lcf,selfish -sizes 50,150 -loads steady,churn,waves \
//	       -faults 0,0.2 -tenants 1,3 -n 200 -reps 3 -parallel 4
//
// With -assert it instead scrapes a live daemon's /metrics and evaluates
// structured assertions (the CI replacement for grep-based smoke checks):
//
//	mecexp -assert http://127.0.0.1:8080 'mecd_admissions_total{result="accepted"}==200' \
//	       'histogram:mecd_admission_seconds' 'gauge:go_goroutines'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mecache/internal/exp"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecexp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecexp", flag.ContinueOnError)
	out := fs.String("out", "results", "results root directory")
	stamp := fs.String("stamp", "", "run directory name under -out (default: UTC timestamp)")
	seed := fs.Uint64("seed", 1, "matrix seed every combo derives its randomness from")
	policies := fs.String("policies", "lcf", "comma-separated policy axis: "+strings.Join(exp.PolicyNames(), ", "))
	sizes := fs.String("sizes", "50", "comma-separated GT-ITM topology sizes")
	loads := fs.String("loads", "steady", "comma-separated load patterns: steady, churn, waves")
	faults := fs.String("faults", "0", "comma-separated cloudlet fault rates in [0,1)")
	tenants := fs.String("tenants", "1", "comma-separated tenant counts")
	reps := fs.Int("reps", 1, "seed repetitions per cell")
	n := fs.Int("n", 100, "admissions per combo")
	par := fs.Int("parallel", 0, "combos executed concurrently (<1 = one per CPU, 1 = serial)")
	loadWorkers := fs.Int("load-workers", 1, "mecload concurrency per combo (1 keeps summaries bit-reproducible)")
	epochWorkers := fs.Int("epoch-workers", 0, "mecd sharded-epoch worker width per combo (<=1 = serial; epoch results are bit-identical at every width)")
	comboTimeout := fs.Duration("combo-timeout", 5*time.Minute, "per-combo deadline")
	mecd := fs.String("mecd", "", "prebuilt mecd binary (default: go build ./cmd/mecd)")
	mecload := fs.String("mecload", "", "prebuilt mecload binary (default: go build ./cmd/mecload)")
	race := fs.Bool("race", false, "build the child binaries with -race when building them here")
	assert := fs.String("assert", "", "assertion mode: scrape this base URL's /metrics and evaluate the positional assertion expressions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *assert != "" {
		exprs := fs.Args()
		if len(exprs) == 0 {
			return fmt.Errorf("-assert needs at least one assertion expression")
		}
		if err := exp.AssertMetrics(*assert, exprs); err != nil {
			return err
		}
		fmt.Fprintf(w, "mecexp: %d assertion(s) hold against %s\n", len(exprs), *assert)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v (assertions need -assert <url>)", fs.Args())
	}

	m := exp.Matrix{
		Policies: splitCSV(*policies),
		Loads:    splitCSV(*loads),
		Reps:     *reps,
		Seed:     *seed,

		Admissions: *n,
	}
	var err error
	if m.Sizes, err = parseInts(*sizes); err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	if m.FaultRates, err = parseFloats(*faults); err != nil {
		return fmt.Errorf("-faults: %w", err)
	}
	if m.Tenants, err = parseInts(*tenants); err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	if err := m.Validate(); err != nil {
		return err
	}

	mecdBin, mecloadBin := *mecd, *mecload
	if mecdBin == "" || mecloadBin == "" {
		buildDir, err := os.MkdirTemp("", "mecexp-bin-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(buildDir)
		fmt.Fprintln(w, "mecexp: building mecd and mecload...")
		builtD, builtL, err := exp.BuildBinaries(buildDir, *race)
		if err != nil {
			return err
		}
		if mecdBin == "" {
			mecdBin = builtD
		}
		if mecloadBin == "" {
			mecloadBin = builtL
		}
	}

	st := *stamp
	if st == "" {
		st = time.Now().UTC().Format("20060102-150405")
	}
	r := &exp.Runner{
		Mecd:         mecdBin,
		Mecload:      mecloadBin,
		Out:          *out,
		Stamp:        st,
		Parallel:     *par,
		LoadWorkers:  *loadWorkers,
		EpochWorkers: *epochWorkers,
		ComboTimeout: *comboTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "mecexp: "+format+"\n", args...)
		},
	}
	combos, _ := m.Expand()
	fmt.Fprintf(w, "mecexp: running %d combos into %s\n", len(combos), r.Out+"/"+st)
	idx, err := r.Run(m)
	if err != nil {
		return err
	}
	table, err := os.ReadFile(r.Out + "/" + st + "/table.txt")
	if err == nil {
		w.Write(table)
	}
	fmt.Fprintf(w, "mecexp: %d ok, %d failed — index at %s/index.json\n", idx.OK, idx.Failed, r.Out+"/"+st)
	if idx.Failed > 0 {
		return fmt.Errorf("%d combo(s) failed", idx.Failed)
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitCSV(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
