package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunGTITM(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-kind", "gtitm", "-size", "60"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "nodes      60") {
		t.Fatalf("missing node count:\n%s", out)
	}
	if !strings.Contains(out, "connected  true") {
		t.Fatalf("topology not connected:\n%s", out)
	}
}

func TestRunAS1755WithEdges(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-kind", "as1755", "-edges"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "nodes      87") || !strings.Contains(out, "links      161") {
		t.Fatalf("AS1755 shape wrong:\n%s", out)
	}
	if strings.Count(out, "--") < 161 {
		t.Fatalf("edge list incomplete")
	}
}

func TestRunWaxman(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-kind", "waxman", "-size", "30"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "waxman-30") {
		t.Fatalf("missing topology name:\n%s", buf.String())
	}
}

func TestRunUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-kind", "mystery"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
