// Command mectopo generates and inspects the topologies used by the
// experiments: GT-ITM-style transit-stub networks, Waxman random graphs,
// and the AS1755-like overlay. It prints summary statistics and optionally
// the full edge list.
//
// Usage:
//
//	mectopo -kind gtitm -size 250 -seed 7
//	mectopo -kind as1755 -edges
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"mecache"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mectopo:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mectopo", flag.ContinueOnError)
	kind := fs.String("kind", "gtitm", "topology kind: gtitm, waxman, or as1755")
	size := fs.Int("size", 100, "node count (gtitm/waxman)")
	seed := fs.Uint64("seed", 1, "random seed")
	alpha := fs.Float64("alpha", 0.4, "Waxman alpha")
	beta := fs.Float64("beta", 0.14, "Waxman beta")
	edges := fs.Bool("edges", false, "print the full edge list")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var topo *mecache.Topology
	var err error
	switch *kind {
	case "gtitm":
		topo, err = mecache.GTITM(*seed, *size)
	case "waxman":
		topo, err = mecache.Waxman(*seed, *size, *alpha, *beta)
	case "as1755":
		topo = mecache.AS1755()
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	g := topo.Graph
	n := g.N()
	minDeg, maxDeg, sumDeg := n, 0, 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		sumDeg += d
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Diameter in hops from a BFS sweep over all sources.
	diameter := 0
	for v := 0; v < n; v++ {
		for _, h := range g.HopDistances(v) {
			if h > diameter {
				diameter = h
			}
		}
	}

	fmt.Fprintf(w, "topology   %s\n", topo.Name)
	fmt.Fprintf(w, "nodes      %d\n", n)
	fmt.Fprintf(w, "links      %d\n", g.M())
	fmt.Fprintf(w, "degree     min %d / avg %.2f / max %d\n", minDeg, float64(sumDeg)/float64(n), maxDeg)
	fmt.Fprintf(w, "diameter   %d hops\n", diameter)
	fmt.Fprintf(w, "connected  %v\n", g.Connected())

	if *edges {
		fmt.Fprintln(w, "edges:")
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				if u < e.To {
					fmt.Fprintf(w, "  %4d -- %-4d  w=%.4f\n", u, e.To, round4(e.Weight))
				}
			}
		}
	}
	return nil
}

func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }
