package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on a free port and returns its base URL plus
// a shutdown function that waits for a clean exit.
func startDaemon(t *testing.T, extra ...string) (string, func() string) {
	t.Helper()
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-size", "50",
		"-shutdown-timeout", "10s",
	}, extra...)
	stop := make(chan struct{})
	var buf bytes.Buffer
	errc := make(chan error, 1)
	go func() { errc <- run(&buf, args, stop) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(portFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, buf.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("daemon never wrote its port file\n%s", buf.String())
	}
	var once bool
	return "http://" + addr, func() string {
		if !once {
			once = true
			close(stop)
			select {
			case err := <-errc:
				if err != nil {
					t.Fatalf("daemon shutdown: %v\n%s", err, buf.String())
				}
			case <-time.After(15 * time.Second):
				t.Fatal("daemon did not stop within 15s")
			}
		}
		return buf.String()
	}
}

func TestDaemonServesAndStopsCleanly(t *testing.T) {
	url, shutdown := startDaemon(t, "-seed", "5")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz %d %v", resp.StatusCode, hz)
	}

	// One admission through the real TCP stack.
	body := strings.NewReader(`{"requests":40,"computePerReq":0.5,"bandwidthPerReq":0.5,"instCost":3,"trafficGBPerReq":0.02,"dataGB":2,"updateRatio":0.1,"homeDC":0,"attachNode":1}`)
	resp, err = http.Post(url+"/v1/providers", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	data.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admission status %d: %s", resp.StatusCode, data)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := new(bytes.Buffer)
	met.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(met.String(), `mecd_admissions_total{result="accepted",tenant="default"} 1`) {
		t.Fatalf("metrics missing admission count:\n%s", met)
	}

	out := shutdown()
	if !strings.Contains(out, "stopped cleanly") {
		t.Fatalf("no clean-stop message in:\n%s", out)
	}
	if !strings.Contains(out, "mecd: serving on http://") {
		t.Fatalf("no serving banner in:\n%s", out)
	}
}

// TestDaemonPortFileReadiness pins the readiness contract the mecexp
// runner and the CI smokes rely on: the instant -port-file exists, the
// daemon must answer — the very first probe of every endpoint, with no
// retry loop, must succeed. Before the contract, the file was written
// after Listen but before Serve started, so an immediate probe raced boot.
func TestDaemonPortFileReadiness(t *testing.T) {
	for i := 0; i < 3; i++ {
		url, shutdown := startDaemon(t, "-seed", fmt.Sprint(10+i))
		// startDaemon returns as soon as the port file has content: probe
		// once, immediately, and require 200 on the first attempt.
		for _, path := range []string{"/healthz", "/metrics", "/v1/market"} {
			resp, err := http.Get(url + path)
			if err != nil {
				t.Fatalf("boot %d: first GET %s failed: %v", i, path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("boot %d: first GET %s = %d, want 200", i, path, resp.StatusCode)
			}
		}
		shutdown()
	}
}

func TestDaemonSnapshotAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "market.json")

	url, shutdown := startDaemon(t, "-seed", "6", "-snapshot", snap)
	body := strings.NewReader(`{"requests":40,"computePerReq":0.5,"bandwidthPerReq":0.5,"instCost":3,"trafficGBPerReq":0.02,"dataGB":2,"updateRatio":0.1,"homeDC":0,"attachNode":1}`)
	resp, err := http.Post(url+"/v1/providers", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admission status %d", resp.StatusCode)
	}
	shutdown()
	// Tenant t snapshots to dir/<t>/file under the -snapshot base path;
	// the bare API is the default tenant.
	if _, err := os.Stat(filepath.Join(dir, "default", "market.json")); err != nil {
		t.Fatalf("no snapshot after shutdown: %v", err)
	}

	url2, shutdown2 := startDaemon(t, "-seed", "6", "-snapshot", snap)
	defer shutdown2()
	resp, err = http.Get(url2 + "/v1/market")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Active   int    `json:"active"`
		Accepted uint64 `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Active != 1 || view.Accepted != 1 {
		t.Fatalf("restored daemon lost state: %+v", view)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-policy", "nope"}, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run(&buf, []string{"-xi", "2"}, nil); err == nil {
		t.Fatal("xi > 1 accepted")
	}
	if err := run(&buf, []string{"-size", "0"}, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := run(&buf, []string{"-addr", "definitely:not:an:addr"}, nil); err == nil {
		t.Fatal("unparseable address accepted")
	}
	if err := run(&buf, []string{"-no-such-flag"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDaemonEpochTicker(t *testing.T) {
	url, shutdown := startDaemon(t, "-seed", "8", "-epoch", "25ms")
	defer shutdown()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/market")
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Epochs uint64 `json:"epochs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Epochs >= 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("ticker never ran two epochs")
}

func TestDaemonRejectsBusyPort(t *testing.T) {
	url, shutdown := startDaemon(t)
	defer shutdown()
	addr := strings.TrimPrefix(url, "http://")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-addr", addr}, nil); err == nil {
		t.Fatal("second daemon bound the same port")
	}
}
