package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mecache/internal/rng"
	"mecache/internal/workload"
)

// TestMain doubles the test binary as the daemon itself: when re-executed
// with MECD_CRASH_HELPER=1 it runs main's run() with the given flags. That
// lets the crash tests SIGKILL a real mecd process — same code, same WAL,
// same HTTP stack — without shelling out to go build.
func TestMain(m *testing.M) {
	if os.Getenv("MECD_CRASH_HELPER") == "1" {
		if err := run(io.Discard, os.Args[1:], nil); err != nil {
			fmt.Fprintln(os.Stderr, "mecd helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemonProc is a subprocess daemon the test can kill abruptly or stop
// gracefully.
type daemonProc struct {
	cmd    *exec.Cmd
	url    string
	waitc  chan error
	stderr *bytes.Buffer
}

// spawnDaemon re-execs the test binary as mecd on a free port and waits
// until it serves.
func spawnDaemon(t *testing.T, extra ...string) *daemonProc {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "port")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-size", "50",
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MECD_CRASH_HELPER=1")
	stderr := new(bytes.Buffer)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemonProc{cmd: cmd, waitc: make(chan error, 1), stderr: stderr}
	go func() { d.waitc <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.waitc
	})

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(portFile); err == nil && len(data) > 0 {
			d.url = "http://" + string(data)
			return d
		}
		select {
		case err := <-d.waitc:
			d.waitc <- err
			t.Fatalf("daemon exited before serving: %v\n%s", err, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("daemon never wrote its port file\n%s", stderr.String())
	return nil
}

// terminate stops a subprocess daemon gracefully (SIGTERM, bounded wait).
func (d *daemonProc) terminate(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.waitc:
		d.waitc <- err
		if err != nil {
			t.Fatalf("daemon shutdown: %v\n%s", err, d.stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon ignored SIGTERM for 15s")
	}
}

// marketBody fetches the raw /v1/market document: the byte-level state the
// differential comparison runs on.
func marketBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/market")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("market: %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestDaemonCrashRecoveryDifferential is the end-to-end chaos criterion: a
// real mecd process is SIGKILLed mid-admission-burst, restarted over the
// same WAL directory, and its recovered market must match — byte for byte —
// a reference daemon that was driven with the same admission prefix and
// never crashed.
func TestDaemonCrashRecoveryDifferential(t *testing.T) {
	walDir := t.TempDir()
	const seed = "42"

	victim := spawnDaemon(t, "-seed", seed, "-wal-dir", walDir)
	var facts struct {
		NumDCs   int `json:"numDCs"`
		NumNodes int `json:"numNodes"`
	}
	if err := json.Unmarshal(marketBody(t, victim.url), &facts); err != nil {
		t.Fatal(err)
	}

	// A serial burst of reproducible admissions; the killer fires as soon as
	// 15 are acknowledged, so the SIGKILL lands while the burst is live.
	wl := workload.Default(9)
	var acked atomic.Int64
	go func() {
		for acked.Load() < 15 {
			time.Sleep(time.Millisecond)
		}
		victim.cmd.Process.Kill()
	}()
	client := &http.Client{Timeout: 5 * time.Second}
	attempts := 0
	for i := 0; i < 500; i++ {
		p := wl.DrawProvider(rng.Substream(9, uint64(i)), facts.NumDCs, facts.NumNodes)
		body, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		attempts++
		resp, err := client.Post(victim.url+"/v1/providers", "application/json", bytes.NewReader(body))
		if err != nil {
			break // the kill landed mid-request
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("admission %d: status %d", i, resp.StatusCode)
		}
		acked.Add(1)
	}
	<-victim.waitc // reap the corpse; error is the kill, not a failure
	victim.waitc <- nil
	if acked.Load() < 15 {
		t.Fatalf("burst never reached the kill threshold: %d acked", acked.Load())
	}

	// Restart over the same WAL. Every acknowledged admission was fsynced
	// before its 201 (default -wal-sync always), so the recovered count is
	// at least acked; the one possibly-in-flight request at kill time may
	// add to it.
	recovered := spawnDaemon(t, "-seed", seed, "-wal-dir", walDir)
	recView := marketBody(t, recovered.url)
	var rec struct {
		Accepted uint64 `json:"accepted"`
	}
	if err := json.Unmarshal(recView, &rec); err != nil {
		t.Fatal(err)
	}
	n := int(rec.Accepted)
	if n < int(acked.Load()) || n > attempts {
		t.Fatalf("recovered %d admissions, acknowledged %d of %d attempts", n, acked.Load(), attempts)
	}

	// The recovery must have come from WAL replay, and say so in /metrics.
	resp, err := http.Get(recovered.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	replayed := -1
	for _, line := range strings.Split(string(metrics), "\n") {
		if rest, ok := strings.CutPrefix(line, `mecd_wal_recovered_records{tenant="default"} `); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparseable gauge %q: %v", line, err)
			}
			replayed = int(f)
		}
	}
	if replayed != n {
		t.Fatalf("mecd_wal_recovered_records = %d, want %d", replayed, n)
	}

	// Reference: a never-crashed daemon fed the same admission prefix.
	ref := spawnDaemon(t, "-seed", seed)
	for i := 0; i < n; i++ {
		p := wl.DrawProvider(rng.Substream(9, uint64(i)), facts.NumDCs, facts.NumNodes)
		body, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ref.url+"/v1/providers", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("reference admission %d: status %d", i, resp.StatusCode)
		}
	}
	refView := marketBody(t, ref.url)
	if !bytes.Equal(recView, refView) {
		t.Fatalf("recovered market diverged from never-crashed reference:\nrecovered: %s\nreference: %s", recView, refView)
	}

	recovered.terminate(t)
	ref.terminate(t)
}

// TestDaemonMultiTenantCrashRecovery SIGKILLs a daemon hosting three
// tenants and restarts it over the same WAL base directory: every tenant
// must recover its acknowledged history independently, and — because all
// three were driven with the same fixed-seed admission prefix — each must
// match a never-crashed single-tenant daemon byte for byte.
func TestDaemonMultiTenantCrashRecovery(t *testing.T) {
	walDir := t.TempDir()
	const seed = "11"
	tenants := []string{"eu-west", "ap-south", "default"}

	victim := spawnDaemon(t, "-seed", seed, "-wal-dir", walDir)
	var facts struct {
		NumDCs   int `json:"numDCs"`
		NumNodes int `json:"numNodes"`
	}
	if err := json.Unmarshal(marketBody(t, victim.url), &facts); err != nil {
		t.Fatal(err)
	}
	wl := workload.Default(9)
	client := &http.Client{Timeout: 5 * time.Second}
	const perTenant = 8
	for i := 0; i < perTenant; i++ {
		p := wl.DrawProvider(rng.Substream(9, uint64(i)), facts.NumDCs, facts.NumNodes)
		body, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tn := range tenants {
			resp, err := client.Post(victim.url+"/v1/t/"+tn+"/providers", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("tenant %s admission %d: status %d", tn, i, resp.StatusCode)
			}
		}
	}
	tenantMarket := func(t *testing.T, base, tn string) []byte {
		t.Helper()
		resp, err := http.Get(base + "/v1/t/" + tn + "/market")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s market: %d: %s", tn, resp.StatusCode, data)
		}
		return data
	}
	want := map[string][]byte{}
	for _, tn := range tenants {
		want[tn] = tenantMarket(t, victim.url, tn)
	}
	victim.cmd.Process.Kill()
	<-victim.waitc
	victim.waitc <- nil

	recovered := spawnDaemon(t, "-seed", seed, "-wal-dir", walDir)
	for _, tn := range tenants {
		if got := tenantMarket(t, recovered.url, tn); !bytes.Equal(got, want[tn]) {
			t.Errorf("tenant %s diverged across SIGKILL:\n got %s\nwant %s", tn, got, want[tn])
		}
	}

	// Same-prefix single-tenant reference: tenancy must not change a
	// single placement decision.
	ref := spawnDaemon(t, "-seed", seed)
	for i := 0; i < perTenant; i++ {
		p := wl.DrawProvider(rng.Substream(9, uint64(i)), facts.NumDCs, facts.NumNodes)
		body, _ := json.Marshal(p)
		resp, err := client.Post(ref.url+"/v1/providers", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("reference admission %d: status %d", i, resp.StatusCode)
		}
	}
	refView := marketBody(t, ref.url)
	for _, tn := range tenants {
		if got := tenantMarket(t, recovered.url, tn); !bytes.Equal(got, refView) {
			t.Errorf("tenant %s diverged from single-tenant reference:\n got %s\nwant %s", tn, got, refView)
		}
	}
	recovered.terminate(t)
	ref.terminate(t)
}

// TestDaemonRestartAfterKillWithSnapshot covers the combined path: a
// snapshot plus a WAL tail, killed without warning, must recover through
// restore-then-replay.
func TestDaemonRestartAfterKillWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snap := filepath.Join(dir, "market.json")

	d := spawnDaemon(t, "-seed", "7", "-wal-dir", walDir, "-snapshot", snap)
	var facts struct {
		NumDCs   int `json:"numDCs"`
		NumNodes int `json:"numNodes"`
	}
	if err := json.Unmarshal(marketBody(t, d.url), &facts); err != nil {
		t.Fatal(err)
	}
	wl := workload.Default(3)
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 6; i++ {
		p := wl.DrawProvider(rng.Substream(3, uint64(i)), facts.NumDCs, facts.NumNodes)
		body, _ := json.Marshal(p)
		resp, err := client.Post(d.url+"/v1/providers", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i == 2 {
			// Snapshot mid-burst: admissions 0..2 land in the snapshot,
			// 3..5 only in the WAL tail.
			sresp, err := client.Post(d.url+"/v1/admin/snapshot", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, sresp.Body)
			sresp.Body.Close()
			if sresp.StatusCode != http.StatusOK {
				t.Fatalf("admin snapshot: %d", sresp.StatusCode)
			}
		}
	}
	want := marketBody(t, d.url)
	d.cmd.Process.Kill()
	<-d.waitc
	d.waitc <- nil

	d2 := spawnDaemon(t, "-seed", "7", "-wal-dir", walDir, "-snapshot", snap)
	if got := marketBody(t, d2.url); !bytes.Equal(got, want) {
		t.Fatalf("snapshot+WAL recovery diverged:\n%s\nvs\n%s", got, want)
	}
	d2.terminate(t)
}
