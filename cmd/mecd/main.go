// Command mecd is the market daemon: it serves the paper's service-caching
// market over a JSON HTTP API. Providers are admitted online with a
// capacity-aware best response, re-equilibrated periodically with the
// LCF/Appro epoch step, and observable via /metrics (Prometheus text
// format) and /healthz.
//
// Usage:
//
//	mecd -addr :8080 -seed 1 -size 150 -epoch 30s -xi 0.7 -policy remote-fallback
//
// The daemon is multi-tenant: /v1/t/{tenant}/... addresses an independent
// market per tenant ID (each with its own event loop, WAL directory, and
// snapshot file), while the bare /v1/... API aliases the default tenant,
// so single-tenant clients work unchanged. Tenants hydrate lazily on
// first request; under -max-resident-tenants the least recently used idle
// tenant is snapshotted and evicted, to be rebuilt from disk on its next
// request.
//
// Readiness: with -port-file the daemon writes its bound address to the
// file only after the listener is serving and a real /healthz probe has
// returned 200 — so a supervisor that waits for the file (the mecexp
// experiment runner, the CI smoke scripts) can hit any endpoint the moment
// the file exists, without retry loops racing boot.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain, every resident tenant's loop stops, and (with -snapshot) its
// market is persisted for the next start. With -wal-dir every mutating
// command is written to a per-tenant write-ahead log before it applies
// and replayed on startup, so even a SIGKILL loses no acknowledged
// mutation (see -wal-sync for the fsync policy); -queue-depth and
// -request-timeout bound how much work each tenant accepts before
// shedding with 429/503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mecache"
)

// awaitReady polls GET /healthz on the bound address until it returns 200,
// failing fast if the serve loop exits first. An unspecified listen host
// (0.0.0.0 / ::) is probed via loopback.
func awaitReady(addr net.Addr, serveErr <-chan error, timeout time.Duration) error {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return fmt.Errorf("parse listen address %q: %w", addr, err)
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	url := "http://" + net.JoinHostPort(host, port) + "/healthz"
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	var lastStatus string
	for {
		resp, err := client.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastStatus = resp.Status
		} else {
			lastStatus = err.Error()
		}
		select {
		case err := <-serveErr:
			return fmt.Errorf("daemon exited before becoming ready: %w", err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready within %v (last probe: %s)", timeout, lastStatus)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	if err := run(os.Stdout, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "mecd:", err)
		os.Exit(1)
	}
}

// run builds and serves the daemon until the stop channel (or a signal)
// fires. The stop channel parameter exists for tests; main passes nil and
// gets signal handling.
func run(w io.Writer, args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mecd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free port)")
	seed := fs.Uint64("seed", 1, "random seed for topology and epoch tie-breaking (shared by every tenant)")
	size := fs.Int("size", 150, "GT-ITM network size")
	maxActive := fs.Int("max-active", 0, "admission cap on concurrently active providers per tenant (0 = unlimited)")
	epoch := fs.Duration("epoch", 0, "wall-clock re-equilibration period (0 = manual epochs via POST /v1/admin/epoch)")
	xi := fs.Float64("xi", 0.7, "coordinated fraction at each epoch")
	migrationAware := fs.Bool("migration-aware", false, "suppress epoch moves not worth their re-instantiation cost")
	epochWorkers := fs.Int("epoch-workers", 0, "worker width of the sharded epoch best-response round (<=1 = serial; results are bit-identical at every width)")
	policy := fs.String("policy", "remote-fallback", "failover policy: remote-fallback, re-place, or wait-for-repair")
	snapshot := fs.String("snapshot", "", "JSON snapshot path for persistence across restarts; tenant t writes dir/<t>/file (empty = none)")
	walDir := fs.String("wal-dir", "", "write-ahead log base directory; tenant t logs to <wal-dir>/<t>/ (empty = no WAL)")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always (lossless), interval, or off")
	walSyncInterval := fs.Duration("wal-sync-interval", 100*time.Millisecond, "minimum spacing between WAL fsyncs under -wal-sync interval")
	walSegmentBytes := fs.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = 64 MiB default)")
	queueDepth := fs.Int("queue-depth", 0, "per-tenant command queue bound; a full queue sheds requests with 429 (0 = default 256)")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline for mutating commands, queue wait included (0 = none)")
	defaultTenant := fs.String("default-tenant", mecache.DefaultTenant, "tenant ID the bare /v1/... routes alias")
	maxResident := fs.Int("max-resident-tenants", 0, "resident tenant cap: beyond it the LRU idle tenant is snapshotted and evicted (0 = unlimited; needs -wal-dir or -snapshot)")
	preload := fs.String("preload-tenants", "", "comma-separated tenant IDs hydrated at startup (empty = the default tenant; \"none\" = fully lazy)")
	portFile := fs.String("port-file", "", "write the bound listen address to this file once serving")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining on shutdown")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	traceDepth := fs.Int("trace", 64, "decision traces retained per tenant for GET /v1/debug/trace (0 disables tracing)")
	spanDepth := fs.Int("spans", 256, "lifecycle spans retained per tenant for GET /v1/debug/spans; requests carrying a traceparent header decompose into queue-wait/WAL/apply/publish child spans (0 disables span tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := mecache.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	pol, err := mecache.ParseFailoverPolicy(*policy)
	if err != nil {
		return err
	}
	cfg := mecache.DefaultServerConfig(*seed)
	cfg.Size = *size
	cfg.MaxActive = *maxActive
	cfg.EpochInterval = *epoch
	cfg.Xi = *xi
	cfg.MigrationAware = *migrationAware
	cfg.EpochWorkers = *epochWorkers
	cfg.Policy = pol
	cfg.SnapshotPath = *snapshot
	cfg.TraceDepth = *traceDepth
	cfg.SpanDepth = *spanDepth
	cfg.WALDir = *walDir
	cfg.WALSync = *walSync
	cfg.WALSyncInterval = *walSyncInterval
	cfg.WALSegmentBytes = *walSegmentBytes
	cfg.QueueDepth = *queueDepth
	cfg.RequestTimeout = *requestTimeout

	reg, err := mecache.NewTenantRegistry(mecache.TenantConfig{
		Template:    cfg,
		Default:     *defaultTenant,
		MaxResident: *maxResident,
		Logger:      logger,
	})
	if err != nil {
		logger.Error("daemon startup failed", "snapshot", *snapshot, "wal", *walDir, "err", err)
		return err
	}

	// Hydrate the requested tenants now rather than at their first request:
	// a corrupt snapshot or unreplayable WAL surfaces as a non-zero exit at
	// boot, exactly as the single-tenant daemon behaved.
	var warm []string
	switch *preload {
	case "":
		warm = []string{*defaultTenant}
	case "none":
	default:
		warm = strings.Split(*preload, ",")
	}
	for _, id := range warm {
		if _, err := reg.Tenant(strings.TrimSpace(id)); err != nil {
			logger.Error("daemon startup failed", "tenant", id, "snapshot", *snapshot, "wal", *walDir, "err", err)
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(w, "mecd: serving on http://%s (seed %d, %d nodes, policy %s)\n",
		ln.Addr(), *seed, *size, pol)
	build := mecache.Build()
	logger.Info("serving", "addr", ln.Addr().String(), "seed", *seed, "size", *size,
		"policy", pol.String(), "epoch", epoch.String(), "traceDepth", *traceDepth, "spanDepth", *spanDepth,
		"defaultTenant", *defaultTenant, "maxResidentTenants", *maxResident,
		"version", build.Version, "revision", build.Revision, "go", build.GoVersion)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Readiness contract: -port-file appears only after the HTTP stack has
	// answered a real /healthz probe with 200 over TCP. By the time a
	// supervisor (the mecexp runner, the CI smokes) can read the file, every
	// preloaded tenant is resident and any endpoint is safe to hit — there
	// is no window where the address is known but requests still race boot.
	if err := awaitReady(ln.Addr(), serveErr, 30*time.Second); err != nil {
		hs.Close()
		reg.Stop(context.Background())
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			hs.Close()
			reg.Stop(context.Background())
			return fmt.Errorf("write port file: %w", err)
		}
	}

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case err := <-serveErr:
			return err
		case s := <-sig:
			logger.Info("shutting down", "signal", s.String())
		}
	} else {
		select {
		case err := <-serveErr:
			return err
		case <-stop:
		}
	}

	// Drain HTTP first so no handler is left waiting on a loop, then stop
	// every resident tenant (writing final snapshots).
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := reg.Stop(ctx); err != nil {
		return fmt.Errorf("loop shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "mecd: stopped cleanly")
	return nil
}
