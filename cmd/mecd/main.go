// Command mecd is the market daemon: it serves the paper's service-caching
// market over a JSON HTTP API. Providers are admitted online with a
// capacity-aware best response, re-equilibrated periodically with the
// LCF/Appro epoch step, and observable via /metrics (Prometheus text
// format) and /healthz.
//
// Usage:
//
//	mecd -addr :8080 -seed 1 -size 150 -epoch 30s -xi 0.7 -policy remote-fallback
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain, the event loop stops, and (with -snapshot) the market is persisted
// for the next start. With -wal-dir every mutating command is written to a
// write-ahead log before it applies and replayed on startup, so even a
// SIGKILL loses no acknowledged mutation (see -wal-sync for the fsync
// policy); -queue-depth and -request-timeout bound how much work the
// daemon accepts before shedding with 429/503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mecache"
)

func main() {
	if err := run(os.Stdout, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "mecd:", err)
		os.Exit(1)
	}
}

// run builds and serves the daemon until the stop channel (or a signal)
// fires. The stop channel parameter exists for tests; main passes nil and
// gets signal handling.
func run(w io.Writer, args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mecd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free port)")
	seed := fs.Uint64("seed", 1, "random seed for topology and epoch tie-breaking")
	size := fs.Int("size", 150, "GT-ITM network size")
	maxActive := fs.Int("max-active", 0, "admission cap on concurrently active providers (0 = unlimited)")
	epoch := fs.Duration("epoch", 0, "wall-clock re-equilibration period (0 = manual epochs via POST /v1/admin/epoch)")
	xi := fs.Float64("xi", 0.7, "coordinated fraction at each epoch")
	migrationAware := fs.Bool("migration-aware", false, "suppress epoch moves not worth their re-instantiation cost")
	policy := fs.String("policy", "remote-fallback", "failover policy: remote-fallback, re-place, or wait-for-repair")
	snapshot := fs.String("snapshot", "", "JSON snapshot path for persistence across restarts (empty = none)")
	walDir := fs.String("wal-dir", "", "write-ahead log directory: mutating commands are logged before applying and replayed on startup (empty = no WAL)")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always (lossless), interval, or off")
	walSyncInterval := fs.Duration("wal-sync-interval", 100*time.Millisecond, "minimum spacing between WAL fsyncs under -wal-sync interval")
	walSegmentBytes := fs.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = 64 MiB default)")
	queueDepth := fs.Int("queue-depth", 0, "command queue bound; a full queue sheds requests with 429 (0 = default 256)")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline for mutating commands, queue wait included (0 = none)")
	portFile := fs.String("port-file", "", "write the bound listen address to this file once serving")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining on shutdown")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	traceDepth := fs.Int("trace", 64, "decision traces retained for GET /v1/debug/trace (0 disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := mecache.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	pol, err := mecache.ParseFailoverPolicy(*policy)
	if err != nil {
		return err
	}
	cfg := mecache.DefaultServerConfig(*seed)
	cfg.Size = *size
	cfg.MaxActive = *maxActive
	cfg.EpochInterval = *epoch
	cfg.Xi = *xi
	cfg.MigrationAware = *migrationAware
	cfg.Policy = pol
	cfg.SnapshotPath = *snapshot
	cfg.Logger = logger
	cfg.TraceDepth = *traceDepth
	cfg.WALDir = *walDir
	cfg.WALSync = *walSync
	cfg.WALSyncInterval = *walSyncInterval
	cfg.WALSegmentBytes = *walSegmentBytes
	cfg.QueueDepth = *queueDepth
	cfg.RequestTimeout = *requestTimeout

	srv, err := mecache.NewMarketServer(cfg)
	if err != nil {
		// The constructor also restores -snapshot state and replays the
		// WAL; surface the cause structurally before the process exits
		// non-zero.
		logger.Error("daemon startup failed", "snapshot", *snapshot, "wal", *walDir, "err", err)
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write port file: %w", err)
		}
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	srv.Start()
	fmt.Fprintf(w, "mecd: serving on http://%s (seed %d, %d nodes, policy %s)\n",
		ln.Addr(), *seed, *size, pol)
	build := mecache.Build()
	logger.Info("serving", "addr", ln.Addr().String(), "seed", *seed, "size", *size,
		"policy", pol.String(), "epoch", epoch.String(), "traceDepth", *traceDepth,
		"version", build.Version, "revision", build.Revision, "go", build.GoVersion)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case err := <-serveErr:
			return err
		case s := <-sig:
			logger.Info("shutting down", "signal", s.String())
		}
	} else {
		select {
		case err := <-serveErr:
			return err
		case <-stop:
		}
	}

	// Drain HTTP first so no handler is left waiting on the loop, then stop
	// the loop (writing the final snapshot).
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Stop(ctx); err != nil {
		return fmt.Errorf("loop shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "mecd: stopped cleanly")
	return nil
}
