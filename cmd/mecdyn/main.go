// Command mecdyn runs the dynamic (temporal) service market: Poisson
// provider arrivals, exponential lifetimes, and periodic LCF
// re-optimization, reporting the market's stability metrics as JSON.
//
// Usage:
//
//	mecdyn -horizon 200 -rate 1.0 -lifetime 40 -epoch 20 -xi 0.7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mecache"
)

// output is the JSON document mecdyn emits.
type output struct {
	Horizon              float64 `json:"horizon"`
	ArrivalRate          float64 `json:"arrivalRate"`
	MeanLifetime         float64 `json:"meanLifetime"`
	Epoch                float64 `json:"epoch"`
	Xi                   float64 `json:"xi"`
	Seed                 uint64  `json:"seed"`
	Arrivals             int     `json:"arrivals"`
	Departures           int     `json:"departures"`
	Rejections           int     `json:"rejections"`
	Epochs               int     `json:"epochs"`
	PeakActive           int     `json:"peakActive"`
	FinalActive          int     `json:"finalActive"`
	TimeAvgSocialCost    float64 `json:"timeAvgSocialCost"`
	CachedFraction       float64 `json:"cachedFraction"`
	Reconfigurations     int     `json:"reconfigurations"`
	ReconfigurationRate  float64 `json:"reconfigurationRate"`
	MigrationCost        float64 `json:"migrationCost"`
	MigrationsSuppressed int     `json:"migrationsSuppressed"`
	MigrationAware       bool    `json:"migrationAware"`
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecdyn:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecdyn", flag.ContinueOnError)
	horizon := fs.Float64("horizon", 200, "virtual simulation duration")
	rate := fs.Float64("rate", 1.0, "provider arrival rate")
	lifetime := fs.Float64("lifetime", 40, "mean service lifetime")
	epoch := fs.Float64("epoch", 20, "LCF re-optimization period (0 = selfish only)")
	xi := fs.Float64("xi", 0.7, "coordinated fraction at each epoch")
	seed := fs.Uint64("seed", 1, "random seed")
	size := fs.Int("size", 150, "GT-ITM network size")
	migrationAware := fs.Bool("migration-aware", false, "suppress epoch moves not worth their re-instantiation cost")
	pretty := fs.Bool("pretty", true, "indent the JSON output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := mecache.DefaultDynamicConfig(*seed)
	cfg.Horizon = *horizon
	cfg.ArrivalRate = *rate
	cfg.MeanLifetime = *lifetime
	cfg.Epoch = *epoch
	cfg.Xi = *xi
	cfg.MigrationAware = *migrationAware

	topo, err := mecache.GTITM(*seed, *size)
	if err != nil {
		return err
	}
	sim, err := mecache.NewDynamicSimulator(topo, cfg)
	if err != nil {
		return err
	}
	m, err := sim.Run()
	if err != nil {
		return err
	}

	out := output{
		Horizon: *horizon, ArrivalRate: *rate, MeanLifetime: *lifetime,
		Epoch: *epoch, Xi: *xi, Seed: *seed,
		Arrivals: m.Arrivals, Departures: m.Departures, Rejections: m.Rejections,
		Epochs: m.Epochs, PeakActive: m.PeakActive, FinalActive: m.FinalActive,
		TimeAvgSocialCost: m.TimeAvgSocialCost, CachedFraction: m.CachedFraction,
		Reconfigurations: m.Reconfigurations, ReconfigurationRate: m.ReconfigurationRate,
		MigrationCost: m.MigrationCost, MigrationsSuppressed: m.MigrationsSuppressed,
		MigrationAware: *migrationAware,
	}
	enc := json.NewEncoder(w)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(out)
}
