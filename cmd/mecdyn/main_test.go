package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "50", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Arrivals == 0 || out.TimeAvgSocialCost <= 0 {
		t.Fatalf("implausible metrics %+v", out)
	}
	if out.Horizon != 50 {
		t.Fatalf("horizon echoed as %v", out.Horizon)
	}
}

func TestRunSelfishOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "40", "-epoch", "0"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Epochs != 0 || out.Reconfigurations != 0 {
		t.Fatalf("selfish-only run has epochs: %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "0"}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if err := run(&buf, []string{"-xi", "3"}); err == nil {
		t.Fatal("xi > 1 accepted")
	}
	if err := run(&buf, []string{"-rate", "-1"}); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
	if err := run(&buf, []string{"-lifetime", "0"}); err == nil {
		t.Fatal("zero lifetime accepted")
	}
	if err := run(&buf, []string{"-size", "0"}); err == nil {
		t.Fatal("zero network size accepted")
	}
	if err := run(&buf, []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunFlagPlumbing checks each flag reaches the simulator config and is
// echoed back, rather than silently falling back to a default.
func TestRunFlagPlumbing(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-horizon", "60", "-rate", "0.8", "-lifetime", "25",
		"-epoch", "15", "-xi", "0.5", "-seed", "9",
		"-migration-aware", "-pretty=false",
	}
	if err := run(&buf, args); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")); n != 0 {
		t.Fatalf("-pretty=false still produced %d extra lines", n)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Horizon != 60 || out.ArrivalRate != 0.8 || out.MeanLifetime != 25 ||
		out.Epoch != 15 || out.Xi != 0.5 || out.Seed != 9 || !out.MigrationAware {
		t.Fatalf("flags not plumbed through: %+v", out)
	}

	// Same seed and flags must reproduce the run exactly.
	var again bytes.Buffer
	if err := run(&again, args); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("fixed-seed mecdyn runs diverged:\n%s\nvs\n%s", buf.String(), again.String())
	}
}
