package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "50", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Arrivals == 0 || out.TimeAvgSocialCost <= 0 {
		t.Fatalf("implausible metrics %+v", out)
	}
	if out.Horizon != 50 {
		t.Fatalf("horizon echoed as %v", out.Horizon)
	}
}

func TestRunSelfishOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "40", "-epoch", "0"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Epochs != 0 || out.Reconfigurations != 0 {
		t.Fatalf("selfish-only run has epochs: %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "0"}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if err := run(&buf, []string{"-xi", "3"}); err == nil {
		t.Fatal("xi > 1 accepted")
	}
}
