// Command mecload is a closed-loop load generator for the mecd market
// daemon: N reproducible provider admissions driven by C concurrent
// workers, with per-worker latency histograms merged into one p50/p95/p99
// report.
//
// Provider i is a pure function of (seed, i) via rng.Substream, so the same
// flags always submit the same workload regardless of concurrency — run
// with -c 1 against a fixed-seed daemon and the final market state is
// byte-reproducible.
//
// With -tenants N the run fans out across N tenants of a multi-tenant
// daemon (/v1/t/<prefix><k>/...), splitting -n round-robin. Tenant k draws
// its j-th provider from substream index k<<32 + j, so each tenant's
// workload is a pure, disjoint stream: a single-tenant run with
// -stream-base $((k<<32)) and the same seed reproduces tenant k's exact
// admission prefix.
//
// The run's JSON summary goes to stdout by default; -out <file> writes it
// atomically (temp+rename in the target directory) instead, keeping stdout
// empty and logs on stderr — the contract the mecexp experiment runner
// relies on to collect summaries without parsing interleaved streams.
//
// Usage:
//
//	mecload -url http://127.0.0.1:8080 -n 10000 -c 8 -seed 1 -churn
//	mecload -url http://127.0.0.1:8080 -n 9000 -c 8 -tenants 3
//	mecload -url http://127.0.0.1:8080 -n 500 -out summary.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mecache"
	"mecache/internal/parallel"
	"mecache/internal/rng"
	"mecache/internal/stats"
	"mecache/internal/workload"
)

// marketFacts is the slice of GET /v1/market mecload needs to draw
// providers the daemon's network can validate.
type marketFacts struct {
	NumDCs   int `json:"numDCs"`
	NumNodes int `json:"numNodes"`
}

// latencySummary reports the merged admission-latency distribution.
type latencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"meanSeconds"`
	P50   float64 `json:"p50Seconds"`
	P95   float64 `json:"p95Seconds"`
	P99   float64 `json:"p99Seconds"`
	Min   float64 `json:"minSeconds"`
	Max   float64 `json:"maxSeconds"`
}

// stageSummary is the per-stage slice of the span breakdown: exact
// percentiles over every scraped span of one lifecycle stage, so a p99
// spike in the latency report can be attributed to queue wait, WAL fsync,
// the equilibrium scan, or view publish.
type stageSummary struct {
	Count int     `json:"count"`
	Total float64 `json:"totalSeconds"`
	P50   float64 `json:"p50Seconds"`
	P95   float64 `json:"p95Seconds"`
	P99   float64 `json:"p99Seconds"`
	Max   float64 `json:"maxSeconds"`
}

// output is the JSON document mecload emits. Retries counts overload
// responses (429 + Retry-After, or 503) that were retried with backoff;
// Shed counts requests abandoned after exhausting their retries. Neither
// is a hard error: the daemon shedding load is the daemon working.
type output struct {
	Target      string         `json:"target"`
	Admissions  int            `json:"admissions"`
	Accepted    uint64         `json:"accepted"`
	Rejected    uint64         `json:"rejected"`
	Retries     uint64         `json:"retries"`
	Shed        uint64         `json:"shed"`
	Errors      uint64         `json:"errors"`
	Concurrency int            `json:"concurrency"`
	Tenants     int            `json:"tenants"`
	StreamBase  uint64         `json:"streamBase,omitempty"`
	Churn       bool           `json:"churn"`
	Seed        uint64         `json:"seed"`
	Elapsed     float64        `json:"elapsedSeconds"`
	Throughput  float64        `json:"admissionsPerSecond"`
	Latency     latencySummary `json:"latency"`
	// TraceSample echoes -trace-sample; Spans is the per-stage breakdown
	// scraped from every tenant's /debug/spans after the run (absent when
	// sampling is off or the daemon has spans disabled).
	TraceSample int                     `json:"traceSample,omitempty"`
	Spans       map[string]stageSummary `json:"spans,omitempty"`
}

// quantile reads the q-quantile from ascending-sorted durations (exact,
// nearest-rank); zero-length input returns 0.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeSpans pulls every tenant's retained spans (n=0 means all) and
// groups their durations by stage into exact-percentile summaries. A
// daemon with span tracing disabled yields an empty map, never an error:
// span scraping is an observability bonus, not a run requirement.
func scrapeSpans(client *http.Client, bases []string) (map[string]stageSummary, error) {
	byStage := map[string][]float64{}
	for _, base := range bases {
		resp, err := client.Get(base + "/debug/spans?n=0")
		if err != nil {
			return nil, err
		}
		var body struct {
			Enabled bool           `json:"enabled"`
			Spans   []mecache.Span `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("decode %s/debug/spans: %w", base, err)
		}
		for _, sp := range body.Spans {
			byStage[sp.Stage] = append(byStage[sp.Stage], sp.Duration)
		}
	}
	out := make(map[string]stageSummary, len(byStage))
	for stage, durs := range byStage {
		sort.Float64s(durs)
		sum := 0.0
		for _, d := range durs {
			sum += d
		}
		out[stage] = stageSummary{
			Count: len(durs),
			Total: sum,
			P50:   quantile(durs, 0.50),
			P95:   quantile(durs, 0.95),
			P99:   quantile(durs, 0.99),
			Max:   durs[len(durs)-1],
		}
	}
	return out, nil
}

// workerStats accumulates one worker's share of the run; workers never
// share state, so the hot path is contention-free.
type workerStats struct {
	hist     *stats.Histogram
	accepted uint64
	rejected uint64
	retries  uint64
	shed     uint64
	errs     uint64
}

// Backoff shape for overload retries: the capped doubling of
// internal/testbed's link-fault retries, scaled to wall-clock HTTP, with
// half-width jitter so synchronized workers desynchronize.
const (
	retryBase = 5 * time.Millisecond
	retryCap  = 500 * time.Millisecond
)

// backoffFor returns the capped doubling delay for the given retry
// attempt. The doubling stops once it reaches the cap (attempt 7): shifting
// retryBase by an arbitrary -retries budget would eventually overflow
// time.Duration into a negative sleep.
func backoffFor(attempt int) time.Duration {
	if attempt >= 7 {
		return retryCap
	}
	if backoff := retryBase << attempt; backoff < retryCap {
		return backoff
	}
	return retryCap
}

// retryable reports whether a response is an overload signal worth backing
// off for: 503 (shutting down, deadline pressure) or 429 carrying
// Retry-After (the daemon's queue-shed reply). A bare 429 is the admission
// cap — a market-state rejection that no amount of waiting fixes.
func retryable(resp *http.Response) bool {
	if resp.StatusCode == http.StatusServiceUnavailable {
		return true
	}
	return resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != ""
}

// sendWithBackoff issues the request built by build, retrying overload
// responses up to maxRetries times with capped exponential backoff and
// jitter drawn from src. It returns the terminal response, or nil if the
// request was shed (retries exhausted); network errors pass through.
func sendWithBackoff(client *http.Client, build func() (*http.Request, error), src *rng.Source, maxRetries int, ws *workerStats) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if !retryable(resp) {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if attempt >= maxRetries {
			ws.shed++
			return nil, nil
		}
		ws.retries++
		backoff := backoffFor(attempt)
		// Jitter in [backoff/2, backoff): full-rate retries with the same
		// period would re-collide at the queue.
		time.Sleep(backoff/2 + time.Duration(src.Float64()*float64(backoff)/2))
	}
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecload:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "mecd base URL")
	n := fs.Int("n", 1000, "total admissions to submit")
	c := fs.Int("c", 4, "concurrent closed-loop workers")
	seed := fs.Uint64("seed", 1, "workload seed (provider i is a pure function of seed and i)")
	churn := fs.Bool("churn", false, "depart each provider right after admission (keeps the active set small)")
	tenants := fs.Int("tenants", 1, "fan admissions out across this many tenants of a multi-tenant daemon (1 = the bare /v1 API)")
	tenantPrefix := fs.String("tenant-prefix", "t", "tenant ID prefix: tenant k is <prefix><k>")
	streamBase := fs.Uint64("stream-base", 0, "offset added to every substream index; -stream-base $((k<<32)) replays tenant k's stream single-tenant")
	retries := fs.Int("retries", 6, "retries with capped exponential backoff when the daemon sheds load (429 + Retry-After, or 503); exhausted requests count as shed, not errors")
	traceSample := fs.Int("trace-sample", 0, "stamp every Nth admission with a W3C traceparent header minted from (seed, substream index), then scrape /debug/spans into a per-stage latency breakdown (0 = off)")
	outPath := fs.String("out", "", "write the JSON summary to this file (atomic temp+rename) instead of stdout; logs stay on stderr")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	pretty := fs.Bool("pretty", true, "indent the JSON output")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := mecache.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("nothing to do: -n %d", *n)
	}
	if *c <= 0 {
		return fmt.Errorf("need at least one worker: -c %d", *c)
	}
	if *retries < 0 {
		return fmt.Errorf("negative retry budget: -retries %d", *retries)
	}
	if *tenants < 1 {
		return fmt.Errorf("need at least one tenant: -tenants %d", *tenants)
	}
	if *traceSample < 0 {
		return fmt.Errorf("negative -trace-sample %d", *traceSample)
	}
	if *tenants > 1 && *tenantPrefix == "" {
		return fmt.Errorf("-tenants %d needs a non-empty -tenant-prefix", *tenants)
	}

	// apiBase maps global admission i to its tenant's URL prefix. With one
	// tenant the bare /v1 API is used, so single-tenant daemons work
	// unchanged; otherwise admission i belongs to tenant i mod T.
	apiBase := func(i int) string {
		if *tenants <= 1 {
			return *url + "/v1"
		}
		return fmt.Sprintf("%s/v1/t/%s%d", *url, *tenantPrefix, i%*tenants)
	}
	// substreamIndex keeps each tenant's draw stream pure and disjoint:
	// tenant k's j-th admission always uses index k<<32 + j, independent of
	// how many tenants share the run.
	substreamIndex := func(i int) uint64 {
		if *tenants <= 1 {
			return *streamBase + uint64(i)
		}
		return *streamBase + uint64(i%*tenants)<<32 + uint64(i / *tenants)
	}

	probe := &http.Client{Timeout: *timeout}
	resp, err := probe.Get(apiBase(0) + "/market")
	if err != nil {
		return fmt.Errorf("probe %s: %w", *url, err)
	}
	var facts marketFacts
	err = json.NewDecoder(resp.Body).Decode(&facts)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode market facts: %w", err)
	}
	if facts.NumDCs <= 0 || facts.NumNodes <= 0 {
		return fmt.Errorf("implausible market: %d DCs, %d nodes", facts.NumDCs, facts.NumNodes)
	}
	logger.Info("starting load", "target", *url, "admissions", *n, "seed", *seed,
		"tenants", *tenants, "streamBase", *streamBase,
		"churn", *churn, "numDCs", facts.NumDCs, "numNodes", facts.NumNodes)

	wl := workload.Default(*seed)
	workers := *c
	if workers > *n {
		workers = *n
	}
	res := make([]workerStats, workers)
	start := time.Now()
	err = parallel.Run(workers, workers, func(wk int) error {
		h, err := stats.NewHistogram(stats.LatencyBuckets())
		if err != nil {
			return err
		}
		ws := &res[wk]
		ws.hist = h
		client := &http.Client{Timeout: *timeout}
		// Jitter stream per worker, disjoint from the provider-draw
		// substreams (which are indexed by admission, not worker).
		jit := rng.Substream(*seed^0x626b6f6666, uint64(wk))
		for i := wk; i < *n; i += workers {
			base := apiBase(i)
			p := wl.DrawProvider(rng.Substream(*seed, substreamIndex(i)), facts.NumDCs, facts.NumNodes)
			body, err := json.Marshal(p)
			if err != nil {
				return err
			}
			// Sampled admissions carry a traceparent whose trace ID is a pure
			// function of (seed, substream index): the same flags mint the
			// same trace IDs every run, so a trace seen in the daemon's span
			// ring names exactly one reproducible admission. The header rides
			// inside the build closure, so retried attempts re-carry it.
			var traceparent string
			if *traceSample > 0 && i%*traceSample == 0 {
				traceparent = mecache.FormatTraceparent(
					mecache.MintTraceID(*seed, substreamIndex(i)), uint64(i)+1)
			}
			t0 := time.Now()
			resp, err := sendWithBackoff(client, func() (*http.Request, error) {
				req, err := http.NewRequest(http.MethodPost, base+"/providers", bytes.NewReader(body))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/json")
				if traceparent != "" {
					req.Header.Set("traceparent", traceparent)
				}
				return req, nil
			}, jit, *retries, ws)
			if err != nil {
				ws.errs++
				continue
			}
			if resp == nil { // shed after exhausting retries
				continue
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			h.Observe(time.Since(t0).Seconds())
			if resp.StatusCode != http.StatusCreated {
				ws.rejected++
				continue
			}
			ws.accepted++
			if *churn {
				var ar struct {
					ID int64 `json:"id"`
				}
				if err := json.Unmarshal(data, &ar); err != nil {
					return fmt.Errorf("worker %d: decode admission: %w", wk, err)
				}
				dresp, err := sendWithBackoff(client, func() (*http.Request, error) {
					return http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/providers/%d", base, ar.ID), nil)
				}, jit, *retries, ws)
				if err != nil {
					ws.errs++
					continue
				}
				if dresp == nil {
					continue
				}
				io.Copy(io.Discard, dresp.Body)
				dresp.Body.Close()
				if dresp.StatusCode != http.StatusNoContent {
					ws.errs++
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()

	merged, err := stats.NewHistogram(stats.LatencyBuckets())
	if err != nil {
		return err
	}
	out := output{
		Target:      *url,
		Admissions:  *n,
		Concurrency: workers,
		Tenants:     *tenants,
		StreamBase:  *streamBase,
		Churn:       *churn,
		Seed:        *seed,
		Elapsed:     elapsed,
	}
	for _, ws := range res {
		if ws.hist != nil {
			if err := merged.Merge(ws.hist); err != nil {
				return err
			}
		}
		out.Accepted += ws.accepted
		out.Rejected += ws.rejected
		out.Retries += ws.retries
		out.Shed += ws.shed
		out.Errors += ws.errs
	}
	if out.Accepted == 0 {
		return fmt.Errorf("no admission succeeded (%d rejected, %d shed, %d errors)", out.Rejected, out.Shed, out.Errors)
	}
	if elapsed > 0 {
		out.Throughput = float64(out.Accepted+out.Rejected) / elapsed
	}
	out.Latency = latencySummary{
		Count: merged.Count(),
		Mean:  merged.Mean(),
		P50:   merged.P50(),
		P95:   merged.P95(),
		P99:   merged.P99(),
		Min:   merged.Min(),
		Max:   merged.Max(),
	}
	if *traceSample > 0 {
		out.TraceSample = *traceSample
		bases := []string{apiBase(0)}
		for k := 1; k < *tenants; k++ {
			bases = append(bases, apiBase(k)) // admission k hits tenant k%T = k
		}
		spans, err := scrapeSpans(probe, bases)
		if err != nil {
			return fmt.Errorf("scrape spans: %w", err)
		}
		out.Spans = spans
		for _, stage := range []string{"request", "queue_wait", "wal_append", "wal_fsync", "apply", "best_response", "publish"} {
			if s, ok := spans[stage]; ok {
				logger.Info("span stage", "stage", stage, "count", s.Count,
					"p50Seconds", s.P50, "p99Seconds", s.P99, "maxSeconds", s.Max)
			}
		}
	}
	logger.Info("load complete", "accepted", out.Accepted, "rejected", out.Rejected,
		"retries", out.Retries, "shed", out.Shed,
		"errors", out.Errors, "elapsedSeconds", elapsed, "admissionsPerSecond", out.Throughput,
		"p50Seconds", out.Latency.P50, "p99Seconds", out.Latency.P99)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(out); err != nil {
		return err
	}
	if *outPath == "" {
		_, err := w.Write(buf.Bytes())
		return err
	}
	return writeFileAtomic(*outPath, buf.Bytes())
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so a consumer polling the path (the mecexp
// runner) never observes a partially written summary. Non-regular
// destinations (e.g. /dev/null, a FIFO) are written directly: renaming
// over them would replace the special file with a regular one.
func writeFileAtomic(path string, data []byte) error {
	if fi, err := os.Stat(path); err == nil && !fi.Mode().IsRegular() {
		return os.WriteFile(path, data, 0o644)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
