package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mecache"
)

// startMarket spins up an in-process daemon behind httptest so the load
// generator exercises the same handler stack mecd serves.
func startMarket(t *testing.T, mutate func(*mecache.ServerConfig)) string {
	t.Helper()
	cfg := mecache.DefaultServerConfig(3)
	cfg.Size = 50
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := mecache.NewMarketServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return ts.URL
}

func loadRun(t *testing.T, args []string) output {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, args); err != nil {
		t.Fatalf("mecload: %v", err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	return out
}

func TestLoadBasic(t *testing.T) {
	url := startMarket(t, nil)
	out := loadRun(t, []string{"-url", url, "-n", "50", "-c", "4", "-seed", "2"})
	if out.Accepted != 50 || out.Rejected != 0 || out.Errors != 0 {
		t.Fatalf("expected 50 clean admissions, got %+v", out)
	}
	if out.Latency.Count != 50 {
		t.Fatalf("latency histogram saw %d samples, want 50", out.Latency.Count)
	}
	if out.Latency.P50 <= 0 || out.Latency.P99 < out.Latency.P50 {
		t.Fatalf("implausible quantiles %+v", out.Latency)
	}
	if out.Throughput <= 0 {
		t.Fatalf("throughput %v", out.Throughput)
	}
}

// TestLoadOutFile pins the -out contract: the summary lands in the file
// (atomically, so no .tmp litter), stdout stays empty, and the document is
// the same shape the stdout path emits.
func TestLoadOutFile(t *testing.T) {
	url := startMarket(t, nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-url", url, "-n", "10", "-c", "2", "-seed", "4", "-out", path}); err != nil {
		t.Fatalf("mecload -out: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("-out run wrote %d bytes to stdout: %s", buf.Len(), buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid summary JSON: %v\n%s", err, data)
	}
	if out.Accepted != 10 || out.Errors != 0 {
		t.Fatalf("summary file: %+v", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "summary.json" {
		t.Fatalf("temp files left behind: %v", entries)
	}

	// An unwritable target must surface as an error, not a silent drop.
	if err := run(&buf, []string{"-url", url, "-n", "1", "-c", "1",
		"-out", filepath.Join(dir, "no", "such", "dir", "s.json")}); err == nil {
		t.Fatal("unwritable -out path accepted")
	}
}

func TestLoadChurnKeepsMarketSmall(t *testing.T) {
	url := startMarket(t, nil)
	out := loadRun(t, []string{"-url", url, "-n", "60", "-c", "3", "-churn"})
	if out.Accepted != 60 || out.Errors != 0 {
		t.Fatalf("churn run: %+v", out)
	}
	// Every admitted provider was departed again.
	facts := loadRun(t, []string{"-url", url, "-n", "1", "-c", "1", "-seed", "99"})
	if facts.Accepted != 1 {
		t.Fatalf("post-churn admission failed: %+v", facts)
	}
}

func TestLoadReportsRejections(t *testing.T) {
	url := startMarket(t, func(cfg *mecache.ServerConfig) { cfg.MaxActive = 10 })
	out := loadRun(t, []string{"-url", url, "-n", "30", "-c", "2"})
	if out.Accepted != 10 || out.Rejected != 20 {
		t.Fatalf("cap 10 over 30 admissions: %+v", out)
	}
}

// TestLoadRetriesOverload drives mecload against a stub that sheds the
// first attempt of every admission with 429 + Retry-After, then accepts:
// every admission should succeed after exactly one retry, none counted as
// errors. A second run with -retries 0 must shed everything and fail the
// "no admission succeeded" check.
func TestLoadRetriesOverload(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	alwaysShed := false
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/market", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"numDCs": 4, "numNodes": 50})
	})
	mux.HandleFunc("POST /v1/providers", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		shed := alwaysShed || attempts%2 == 1
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]int64{"id": 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	out := loadRun(t, []string{"-url", ts.URL, "-n", "8", "-c", "1", "-retries", "3"})
	if out.Accepted != 8 || out.Retries != 8 || out.Shed != 0 || out.Errors != 0 {
		t.Fatalf("alternating shed/accept with retries: %+v", out)
	}
	// A 429-then-success admission is ONE end-to-end sample (queue wait and
	// backoff included), not one per attempt: the histogram must see exactly
	// as many samples as terminal responses.
	if out.Latency.Count != out.Accepted+out.Rejected {
		t.Fatalf("retried admissions double-counted: %d latency samples for %d terminal responses",
			out.Latency.Count, out.Accepted+out.Rejected)
	}

	mu.Lock()
	alwaysShed = true
	mu.Unlock()
	// With the retry budget at zero every admission is shed immediately and
	// run must report that nothing succeeded.
	var buf bytes.Buffer
	err := run(&buf, []string{"-url", ts.URL, "-n", "4", "-c", "1", "-retries", "0"})
	if err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("expected all-shed failure mentioning sheds, got %v", err)
	}
}

// TestLoadBareRateLimitNotRetried pins the distinction the daemon's two
// 429s rely on: a 429 without Retry-After is the admission cap, a market
// rejection that retrying cannot fix — it must count as rejected without
// consuming the retry budget.
func TestLoadBareRateLimitNotRetried(t *testing.T) {
	attempts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/market", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"numDCs": 4, "numNodes": 50})
	})
	mux.HandleFunc("POST /v1/providers", func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(map[string]int64{"id": 1})
			return
		}
		w.WriteHeader(http.StatusTooManyRequests) // no Retry-After: capacity cap
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	out := loadRun(t, []string{"-url", ts.URL, "-n", "5", "-c", "1", "-retries", "6"})
	if out.Accepted != 1 || out.Rejected != 4 || out.Retries != 0 || out.Shed != 0 {
		t.Fatalf("bare 429s should be terminal rejections: %+v", out)
	}
	if attempts != 5 {
		t.Fatalf("expected exactly one attempt per admission, saw %d", attempts)
	}
}

func TestLoadValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-n", "0"}); err == nil {
		t.Fatal("zero admissions accepted")
	}
	if err := run(&buf, []string{"-c", "0"}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if err := run(&buf, []string{"-tenants", "0"}); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if err := run(&buf, []string{"-tenants", "2", "-tenant-prefix", ""}); err == nil {
		t.Fatal("empty tenant prefix accepted with -tenants 2")
	}
	if err := run(&buf, []string{"-url", "http://127.0.0.1:1", "-timeout", "100ms"}); err == nil {
		t.Fatal("unreachable daemon accepted")
	}
}

// TestLoadBackoffClamp pins the retry-delay shape: capped doubling that
// stays positive for any attempt number. Before the clamp, a large -retries
// budget shifted retryBase past 63 bits, overflowing time.Duration into a
// negative (i.e. zero-length) sleep and turning backoff into a busy loop.
func TestLoadBackoffClamp(t *testing.T) {
	if got := backoffFor(0); got != retryBase {
		t.Fatalf("attempt 0: %v, want %v", got, retryBase)
	}
	if got := backoffFor(3); got != retryBase<<3 {
		t.Fatalf("attempt 3: %v, want %v", got, retryBase<<3)
	}
	for _, attempt := range []int{7, 41, 63, 100, 1 << 20} {
		if got := backoffFor(attempt); got != retryCap {
			t.Fatalf("attempt %d: %v, want cap %v", attempt, got, retryCap)
		}
	}
}

// startTenantRegistry serves a multi-tenant registry over the same template
// startMarket uses (seed 3, size 50), so a registry tenant and a bare
// single-tenant daemon see identical topologies.
func startTenantRegistry(t *testing.T) string {
	t.Helper()
	cfg := mecache.DefaultServerConfig(3)
	cfg.Size = 50
	reg, err := mecache.NewTenantRegistry(mecache.TenantConfig{Template: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := reg.Stop(ctx); err != nil {
			t.Errorf("stop registry: %v", err)
		}
	})
	return ts.URL
}

func marketBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadMultiTenantFanOut drives -tenants 3 against a tenant registry and
// pins the substream contract: tenant k's market must be byte-identical to
// a bare single-tenant run of its share with -stream-base $((k<<32)).
func TestLoadMultiTenantFanOut(t *testing.T) {
	url := startTenantRegistry(t)
	out := loadRun(t, []string{"-url", url, "-n", "9", "-c", "1", "-seed", "11", "-tenants", "3"})
	if out.Accepted != 9 || out.Rejected != 0 || out.Errors != 0 {
		t.Fatalf("fan-out run: %+v", out)
	}
	if out.Tenants != 3 || out.StreamBase != 0 {
		t.Fatalf("output misreports the fan-out: %+v", out)
	}

	for k := 0; k < 3; k++ {
		got := marketBytes(t, fmt.Sprintf("%s/v1/t/t%d/market", url, k))
		var view struct {
			Active int `json:"active"`
		}
		if err := json.Unmarshal(got, &view); err != nil {
			t.Fatal(err)
		}
		if view.Active != 3 {
			t.Fatalf("tenant t%d holds %d providers, want its round-robin share of 3", k, view.Active)
		}

		// Replay tenant k's exact stream against a fresh single-tenant
		// daemon: same seed, same template, -stream-base k<<32.
		ref := startMarket(t, nil)
		loadRun(t, []string{"-url", ref, "-n", "3", "-c", "1", "-seed", "11",
			"-stream-base", fmt.Sprint(uint64(k) << 32)})
		want := marketBytes(t, ref+"/v1/market")
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant t%d diverged from its single-tenant replay:\n%s\nvs\n%s", k, got, want)
		}
	}
}

// TestLoadSustainsTenThousandAdmissions is the throughput acceptance
// criterion: the daemon absorbs >=10k admissions from concurrent closed-loop
// workers. Churn mode keeps the active set bounded by the worker count so
// per-admission cost stays flat.
func TestLoadSustainsTenThousandAdmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("10k admissions: skipped in -short mode")
	}
	url := startMarket(t, nil)
	out := loadRun(t, []string{"-url", url, "-n", "10000", "-c", "8", "-churn"})
	if out.Accepted != 10000 || out.Errors != 0 {
		t.Fatalf("10k run: accepted %d rejected %d errors %d", out.Accepted, out.Rejected, out.Errors)
	}
	if out.Latency.Count != 10000 {
		t.Fatalf("latency histogram saw %d samples", out.Latency.Count)
	}
	t.Logf("10k admissions in %.2fs (%.0f/s, p50 %.1fms p99 %.1fms)",
		out.Elapsed, out.Throughput, out.Latency.P50*1e3, out.Latency.P99*1e3)
}

// TestLoadDeterministicSerial pins the reproducibility acceptance
// criterion at the binary level: two fixed-seed serial runs against two
// fixed-seed daemons leave byte-identical placements.
func TestLoadDeterministicSerial(t *testing.T) {
	run1 := serialPlacements(t)
	run2 := serialPlacements(t)
	if !bytes.Equal(run1, run2) {
		t.Fatalf("fixed-seed serial runs diverged:\n%s\nvs\n%s", run1, run2)
	}
}

func serialPlacements(t *testing.T) []byte {
	t.Helper()
	cfg := mecache.DefaultServerConfig(17)
	cfg.Size = 50
	s, err := mecache.NewMarketServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	loadRun(t, []string{"-url", ts.URL, "-n", "30", "-c", "1", "-seed", "11"})
	view, err := json.Marshal(s.View())
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// TestQuantileNearestRank pins the exact-sample quantile the span summary
// uses (nearest-rank, not interpolated).
func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 5}, {0.95, 10}, {1, 10}}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty = %v, want 0", got)
	}
}

// TestLoadTraceSample drives a sampled run end to end: every Nth admission
// carries a minted traceparent, the daemon decomposes it, and the summary
// gains a per-stage breakdown whose request count matches the sampling
// rate.
func TestLoadTraceSample(t *testing.T) {
	url := startMarket(t, nil)
	out := loadRun(t, []string{"-url", url, "-n", "40", "-c", "4", "-seed", "6", "-trace-sample", "4"})
	if out.Accepted != 40 || out.Errors != 0 {
		t.Fatalf("sampled run: %+v", out)
	}
	if out.TraceSample != 4 {
		t.Fatalf("summary traceSample %d, want 4", out.TraceSample)
	}
	req, ok := out.Spans["request"]
	if !ok {
		t.Fatalf("no request stage in span summary: %v", out.Spans)
	}
	// 40 admissions sampled every 4th: 10 root spans (retries could add
	// more, but a clean run has none).
	if req.Count != 10 {
		t.Fatalf("request span count %d, want 10", req.Count)
	}
	for _, stage := range []string{"queue_wait", "apply", "best_response", "publish"} {
		ss, ok := out.Spans[stage]
		if !ok {
			t.Fatalf("stage %s missing from span summary: %v", stage, out.Spans)
		}
		if ss.Count != 10 {
			t.Fatalf("stage %s count %d, want 10", stage, ss.Count)
		}
		if ss.P50 < 0 || ss.P99 < ss.P50 || ss.Max < ss.P99 {
			t.Fatalf("stage %s has implausible quantiles %+v", stage, ss)
		}
	}
	// No WAL on this daemon, so no WAL stages may appear.
	if _, ok := out.Spans["wal_append"]; ok {
		t.Fatal("wal_append stage reported by a WAL-less daemon")
	}

	// An unsampled run must not carry the section at all.
	plain := loadRun(t, []string{"-url", url, "-n", "5", "-c", "1", "-seed", "7"})
	if plain.TraceSample != 0 || plain.Spans != nil {
		t.Fatalf("unsampled summary carries span section: %+v", plain.Spans)
	}
}

// TestLoadTraceSampleAgainstDisabledSpans checks graceful degradation: a
// daemon with span tracing off accepts the traceparent headers, ignores
// them, and the scrape yields an empty breakdown instead of an error.
func TestLoadTraceSampleAgainstDisabledSpans(t *testing.T) {
	url := startMarket(t, func(cfg *mecache.ServerConfig) { cfg.SpanDepth = 0 })
	out := loadRun(t, []string{"-url", url, "-n", "12", "-c", "2", "-seed", "8", "-trace-sample", "3"})
	if out.Accepted != 12 || out.Errors != 0 {
		t.Fatalf("run against spans-off daemon: %+v", out)
	}
	if len(out.Spans) != 0 {
		t.Fatalf("spans-off daemon produced a breakdown: %v", out.Spans)
	}
}

// TestLoadTraceSampleValidation rejects a negative rate.
func TestLoadTraceSampleValidation(t *testing.T) {
	if err := run(io.Discard, []string{"-url", "http://localhost:1", "-n", "1", "-trace-sample", "-1"}); err == nil {
		t.Fatal("negative -trace-sample accepted")
	}
}

// TestLoadTraceSampleMultiTenant fans sampled admissions across tenants
// and checks every tenant's ring contributes to the aggregate breakdown.
func TestLoadTraceSampleMultiTenant(t *testing.T) {
	tpl := mecache.DefaultServerConfig(5)
	tpl.Size = 50
	reg, err := mecache.NewTenantRegistry(mecache.TenantConfig{Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := reg.Stop(ctx); err != nil {
			t.Errorf("registry stop: %v", err)
		}
	})
	out := loadRun(t, []string{"-url", ts.URL, "-n", "24", "-c", "3", "-seed", "9",
		"-tenants", "3", "-trace-sample", "2"})
	if out.Accepted != 24 || out.Errors != 0 {
		t.Fatalf("multi-tenant sampled run: %+v", out)
	}
	req, ok := out.Spans["request"]
	if !ok || req.Count != 12 {
		t.Fatalf("request span count %d across 3 tenants, want 12 (%v)", req.Count, out.Spans)
	}
}
