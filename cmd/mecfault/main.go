// Command mecfault runs the dynamic service market under fault injection:
// cloudlets suffer outages and repairs, cached instances crash, and the
// affected providers recover according to a failover policy. A single run
// reports resilience metrics as JSON; -sweep runs the full Fig-F resilience
// sweep (failure rate x policy) and renders its tables.
//
// Usage:
//
//	mecfault -horizon 200 -mtbf 100 -mttr 5 -policy re-place
//	mecfault -sweep -seed 7
//	mecfault -sweep -parallel 1          # force the serial sweep path
//	mecfault -sweep -csv > figf.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mecache"
)

// output is the JSON document a single mecfault run emits.
type output struct {
	Horizon              float64 `json:"horizon"`
	ArrivalRate          float64 `json:"arrivalRate"`
	MeanLifetime         float64 `json:"meanLifetime"`
	Epoch                float64 `json:"epoch"`
	Xi                   float64 `json:"xi"`
	Seed                 uint64  `json:"seed"`
	CloudletMTBF         float64 `json:"cloudletMTBF"`
	CloudletMTTR         float64 `json:"cloudletMTTR"`
	InstanceMTBF         float64 `json:"instanceMTBF"`
	Policy               string  `json:"policy"`
	Arrivals             int     `json:"arrivals"`
	Departures           int     `json:"departures"`
	Rejections           int     `json:"rejections"`
	TimeAvgSocialCost    float64 `json:"timeAvgSocialCost"`
	CachedFraction       float64 `json:"cachedFraction"`
	CloudletOutages      int     `json:"cloudletOutages"`
	CloudletRepairs      int     `json:"cloudletRepairs"`
	InstanceCrashes      int     `json:"instanceCrashes"`
	Failovers            int     `json:"failovers"`
	FailoverReplacements int     `json:"failoverReplacements"`
	FailbackReturns      int     `json:"failbackReturns"`
	WaitTimeouts         int     `json:"waitTimeouts"`
	Availability         float64 `json:"availability"`
	MeanTimeToRecover    float64 `json:"meanTimeToRecover"`
	SLAViolationFraction float64 `json:"slaViolationFraction"`
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecfault:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecfault", flag.ContinueOnError)
	horizon := fs.Float64("horizon", 200, "virtual simulation duration")
	rate := fs.Float64("rate", 1.0, "provider arrival rate")
	lifetime := fs.Float64("lifetime", 40, "mean service lifetime")
	epoch := fs.Float64("epoch", 20, "LCF re-optimization period (0 = selfish only)")
	xi := fs.Float64("xi", 0.7, "coordinated fraction at each epoch")
	seed := fs.Uint64("seed", 1, "random seed")
	size := fs.Int("size", 150, "GT-ITM network size")
	mtbf := fs.Float64("mtbf", 100, "mean cloudlet up-time between outages (0 disables outages)")
	mttr := fs.Float64("mttr", 5, "mean cloudlet outage duration")
	instMTBF := fs.Float64("instance-mtbf", 0, "mean cached-instance up-time before a crash (0 disables crashes)")
	detection := fs.Float64("detection", 0.5, "failure detection delay")
	waitTimeout := fs.Float64("wait-timeout", 20, "give-up time for wait-for-repair")
	policyName := fs.String("policy", mecache.PolicyRemoteFallback.String(),
		"failover policy: "+strings.Join(policyNames(), ", "))
	sweep := fs.Bool("sweep", false, "run the Fig-F resilience sweep instead of a single run")
	par := fs.Int("parallel", 0, "with -sweep, worker pool size: 0 = one worker per CPU, 1 = serial; any value produces identical tables")
	csv := fs.Bool("csv", false, "with -sweep, emit CSV instead of aligned tables")
	pretty := fs.Bool("pretty", true, "indent the JSON output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweep {
		cfg := mecache.DefaultFigF(*seed)
		cfg.Parallelism = *par
		fig, err := mecache.FigF(cfg)
		if err != nil {
			return err
		}
		if *csv {
			return fig.WriteCSV(w)
		}
		return fig.Render(w)
	}

	policy, err := mecache.ParseFailoverPolicy(*policyName)
	if err != nil {
		return err
	}
	cfg := mecache.DefaultDynamicConfig(*seed)
	cfg.Horizon = *horizon
	cfg.ArrivalRate = *rate
	cfg.MeanLifetime = *lifetime
	cfg.Epoch = *epoch
	cfg.Xi = *xi
	cfg.Fault = mecache.FaultConfig{
		CloudletMTBF:   *mtbf,
		CloudletMTTR:   *mttr,
		InstanceMTBF:   *instMTBF,
		DetectionDelay: *detection,
		WaitTimeout:    *waitTimeout,
		Policy:         policy,
	}

	topo, err := mecache.GTITM(*seed, *size)
	if err != nil {
		return err
	}
	sim, err := mecache.NewDynamicSimulator(topo, cfg)
	if err != nil {
		return err
	}
	m, err := sim.Run()
	if err != nil {
		return err
	}

	out := output{
		Horizon: *horizon, ArrivalRate: *rate, MeanLifetime: *lifetime,
		Epoch: *epoch, Xi: *xi, Seed: *seed,
		CloudletMTBF: *mtbf, CloudletMTTR: *mttr, InstanceMTBF: *instMTBF,
		Policy:   policy.String(),
		Arrivals: m.Arrivals, Departures: m.Departures, Rejections: m.Rejections,
		TimeAvgSocialCost: m.TimeAvgSocialCost, CachedFraction: m.CachedFraction,
		CloudletOutages: m.CloudletOutages, CloudletRepairs: m.CloudletRepairs,
		InstanceCrashes: m.InstanceCrashes, Failovers: m.Failovers,
		FailoverReplacements: m.FailoverReplacements, FailbackReturns: m.FailbackReturns,
		WaitTimeouts: m.WaitTimeouts, Availability: m.Availability,
		MeanTimeToRecover: m.MeanTimeToRecover, SLAViolationFraction: m.SLAViolationFraction,
	}
	enc := json.NewEncoder(w)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(out)
}

// policyNames lists the accepted -policy values.
func policyNames() []string {
	ps := mecache.FailoverPolicies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return names
}
