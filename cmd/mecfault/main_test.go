package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-horizon", "60", "-mtbf", "30", "-mttr", "4", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Arrivals == 0 || out.TimeAvgSocialCost <= 0 {
		t.Fatalf("implausible metrics %+v", out)
	}
	if out.Availability <= 0 || out.Availability > 1 {
		t.Fatalf("availability %v outside (0,1]", out.Availability)
	}
	if out.Policy != "remote-fallback" {
		t.Fatalf("default policy echoed as %q", out.Policy)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"remote-fallback", "re-place", "wait-for-repair"} {
		var buf bytes.Buffer
		if err := run(&buf, []string{"-horizon", "50", "-mtbf", "25", "-policy", pol}); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
		var out output
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Policy != pol {
			t.Fatalf("policy echoed as %q, want %q", out.Policy, pol)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-horizon", "50", "-mtbf", "25", "-seed", "9", "-policy", "re-place"}
	var a, b bytes.Buffer
	if err := run(&a, args); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, args); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed runs diverge:\n%s\n%s", a.String(), b.String())
	}
}

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sweep", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"Fig F", "availability", "remote-fallback", "re-place", "wait-for-repair"} {
		if !strings.Contains(text, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, text)
		}
	}
	buf.Reset()
	if err := run(&buf, []string{"-sweep", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "failure rate,remote-fallback") {
		t.Fatalf("CSV sweep missing header:\n%s", buf.String())
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-policy", "nonsense"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run(&buf, []string{"-horizon", "0"}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if err := run(&buf, []string{"-mtbf", "10", "-mttr", "0"}); err == nil {
		t.Fatal("zero MTTR with outages enabled accepted")
	}
}
