// Command mecbench regenerates the figures of the paper's evaluation
// section as aligned text tables.
//
// Usage:
//
//	mecbench -fig all                    # every figure (default)
//	mecbench -fig 2 -seed 42             # only Figure 2
//	mecbench -fig poa                    # the Price-of-Anarchy study
//	mecbench -fig 2 -quick               # reduced sweep for a fast smoke run
//	mecbench -fig poa -parallel 1        # force the serial sweep path
//	mecbench -fig 3 -format csv          # plot-ready CSV
//	mecbench -fig 3 -format svg -out dir # one SVG chart per panel
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mecache"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecbench", flag.ContinueOnError)
	figFlag := fs.String("fig", "all", "figure to regenerate: 2, 3, 5, 6, 7, poa, ablation, or all")
	seed := fs.Uint64("seed", 42, "experiment seed")
	quick := fs.Bool("quick", false, "reduced sweeps for a fast smoke run")
	format := fs.String("format", "table", "output format: table, csv, or svg")
	outDir := fs.String("out", ".", "directory for svg output files")
	par := fs.Int("parallel", 0, "sweep worker pool size: 0 = one worker per CPU, 1 = serial; any value produces identical tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" && *format != "svg" {
		return fmt.Errorf("unknown format %q (want table, csv, or svg)", *format)
	}

	want := strings.ToLower(*figFlag)
	selected := func(name string) bool { return want == "all" || want == name }
	ran := false

	if selected("2") {
		cfg := mecache.DefaultFig2(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.Sizes = []int{50, 150, 250}
			cfg.Reps = 1
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig2(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("3") {
		cfg := mecache.DefaultFig3(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.SelfishFractions = []float64{0, 0.3, 0.6, 1}
			cfg.Reps = 1
			cfg.Size = 100
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig3(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("5") {
		cfg := mecache.DefaultFig5(*seed)
		if *quick {
			cfg.Providers = []int{40}
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig5(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("6") {
		cfg := mecache.DefaultFig6(*seed)
		if *quick {
			cfg.SelfishFractions = []float64{0, 0.5, 1}
			cfg.RequestCounts = []int{40, 80}
			cfg.NetworkSizes = []int{50, 150, 250}
			cfg.UpdateRatios = []float64{0.1, 0.3}
			cfg.BaseProviders = 40
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig6(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("7") {
		cfg := mecache.DefaultFig7(*seed)
		if *quick {
			cfg.AMaxValues = []float64{2, 4}
			cfg.BMaxValues = []float64{60, 120}
			cfg.Providers = 40
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig7(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("ablation") {
		cfg := mecache.DefaultAblation(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.XiValues = []float64{0, 0.5, 1}
			cfg.Reps = 1
			cfg.Restarts = 8
			cfg.NumProviders = 40
			cfg.Size = 100
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Ablation(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("poa") {
		cfg := mecache.DefaultPoA(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.XiValues = []float64{0, 0.5, 1}
			cfg.Reps = 1
			cfg.Restarts = 10
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.PoAStudy(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 2, 3, 5, 6, 7, poa, ablation, or all)", *figFlag)
	}
	return nil
}

func render(w io.Writer, format, outDir string, f func() (*mecache.Figure, error)) error {
	fig, err := f()
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return fig.WriteCSV(w)
	case "svg":
		files, err := mecache.WriteSVGs(fig, outDir)
		if err != nil {
			return err
		}
		for _, name := range files {
			fmt.Fprintln(w, "wrote", name)
		}
		return nil
	default:
		return fig.Render(w)
	}
}
