// Command mecbench regenerates the figures of the paper's evaluation
// section as aligned text tables.
//
// Usage:
//
//	mecbench -fig all                    # every figure (default)
//	mecbench -fig 2 -seed 42             # only Figure 2
//	mecbench -fig poa                    # the Price-of-Anarchy study
//	mecbench -fig 2 -quick               # reduced sweep for a fast smoke run
//	mecbench -fig poa -parallel 1        # force the serial sweep path
//	mecbench -fig 3 -format csv          # plot-ready CSV
//	mecbench -fig 3 -format svg -out dir # one SVG chart per panel
//
// Benchmark mode (mutually exclusive with figures) runs the tracked
// benchmark cases from internal/bench:
//
//	mecbench -bench-json BENCH_5.json    # measure and write the baseline
//	mecbench -bench-check BENCH_5.json   # compare against the baseline
//	mecbench -bench-check BENCH_5.json -bench-time 0s -bench-iters 1
//	                                     # CI smoke: one timed op per case
//
// -bench-check judges engine-vs-naive nanosecond ratios (machine- and
// race-detector-independent) and per-case allocation counts, never raw
// nanoseconds, so a committed baseline stays meaningful on any hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"mecache"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecbench", flag.ContinueOnError)
	figFlag := fs.String("fig", "all", "figure to regenerate: 2, 3, 5, 6, 7, poa, ablation, or all")
	seed := fs.Uint64("seed", 42, "experiment seed")
	quick := fs.Bool("quick", false, "reduced sweeps for a fast smoke run")
	format := fs.String("format", "table", "output format: table, csv, or svg")
	outDir := fs.String("out", ".", "directory for svg output files")
	par := fs.Int("parallel", 0, "sweep worker pool size: 0 = one worker per CPU, 1 = serial; any value produces identical tables")
	benchJSON := fs.String("bench-json", "", "measure the tracked benchmarks and write the baseline JSON to this path")
	benchCheck := fs.String("bench-check", "", "measure the tracked benchmarks and compare against the baseline JSON at this path")
	benchTime := fs.Duration("bench-time", time.Second, "minimum measured time per tracked benchmark")
	benchIters := fs.Int("bench-iters", 0, "iteration cap per tracked benchmark (0 = until -bench-time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" && *format != "svg" {
		return fmt.Errorf("unknown format %q (want table, csv, or svg)", *format)
	}
	if *benchJSON != "" && *benchCheck != "" {
		return fmt.Errorf("-bench-json and -bench-check are mutually exclusive")
	}
	if *benchJSON != "" {
		return benchBaseline(w, *benchJSON, *benchTime, *benchIters)
	}
	if *benchCheck != "" {
		return benchCompare(w, *benchCheck, *benchTime, *benchIters)
	}

	want := strings.ToLower(*figFlag)
	selected := func(name string) bool { return want == "all" || want == name }
	ran := false

	if selected("2") {
		cfg := mecache.DefaultFig2(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.Sizes = []int{50, 150, 250}
			cfg.Reps = 1
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig2(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("3") {
		cfg := mecache.DefaultFig3(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.SelfishFractions = []float64{0, 0.3, 0.6, 1}
			cfg.Reps = 1
			cfg.Size = 100
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig3(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("5") {
		cfg := mecache.DefaultFig5(*seed)
		if *quick {
			cfg.Providers = []int{40}
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig5(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("6") {
		cfg := mecache.DefaultFig6(*seed)
		if *quick {
			cfg.SelfishFractions = []float64{0, 0.5, 1}
			cfg.RequestCounts = []int{40, 80}
			cfg.NetworkSizes = []int{50, 150, 250}
			cfg.UpdateRatios = []float64{0.1, 0.3}
			cfg.BaseProviders = 40
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig6(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("7") {
		cfg := mecache.DefaultFig7(*seed)
		if *quick {
			cfg.AMaxValues = []float64{2, 4}
			cfg.BMaxValues = []float64{60, 120}
			cfg.Providers = 40
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Fig7(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("ablation") {
		cfg := mecache.DefaultAblation(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.XiValues = []float64{0, 0.5, 1}
			cfg.Reps = 1
			cfg.Restarts = 8
			cfg.NumProviders = 40
			cfg.Size = 100
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.Ablation(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if selected("poa") {
		cfg := mecache.DefaultPoA(*seed)
		cfg.Parallelism = *par
		if *quick {
			cfg.XiValues = []float64{0, 0.5, 1}
			cfg.Reps = 1
			cfg.Restarts = 10
		}
		if err := render(w, *format, *outDir, func() (*mecache.Figure, error) { return mecache.PoAStudy(cfg) }); err != nil {
			return err
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 2, 3, 5, 6, 7, poa, ablation, or all)", *figFlag)
	}
	return nil
}

// benchBaseline measures every tracked case and writes the baseline file.
func benchBaseline(w io.Writer, path string, minDur time.Duration, maxIters int) error {
	results, err := measureTracked(w, minDur, maxIters)
	if err != nil {
		return err
	}
	file := mecache.BenchFile{
		Note:    "Tracked benchmark baseline. Regenerate with: go run ./cmd/mecbench -bench-json " + path,
		Results: results,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}

// ratioTolerance is how much an engine-vs-naive time ratio may drift above
// the committed baseline before the check fails. Smoke runs measure only a
// handful of iterations, where ratios jitter by up to ~35%; a genuinely
// lost engine optimization moves the dynamics ratio by 5x or more, so 50%
// still separates noise from regression cleanly.
const ratioTolerance = 1.5

// dynamicsRatioCeiling enforces the tracked speedup absolutely: the engine
// best-response dynamics must stay at least 2x faster than the naive scan
// in the same run, independent of any baseline drift.
const dynamicsRatioCeiling = 0.5

// allocTolerance is the allowed relative growth in allocations per
// operation. Allocation counts are near-deterministic (no scheduler in the
// loop), so the bound is tighter than the time-ratio one.
const allocTolerance = 1.25

// allocSlack absorbs run-to-run allocation jitter from the Go runtime
// (background GC bookkeeping counted by MemStats.Mallocs) on cases with
// small absolute counts.
const allocSlack = 16

// warmEpochRatioCeiling bounds the ReequilibrateWarm/Reequilibrate time
// ratio at the largest scale: an unchanged-reduction epoch served from the
// warm state must stay at least 5x faster than the cold solve in the same
// run. Like the dynamics ceiling, the same-process ratio is machine- and
// race-detector-independent.
const warmEpochRatioCeiling = 0.2

// multiTenantCeiling bounds the MultiTenantAdmission 8-tenant/1-tenant
// time ratio. One 8-tenant op performs 8 concurrent admissions, so
// perfectly isolated tenant loops cost 8/min(8,GOMAXPROCS) single-tenant
// ops of wall clock; the 2x headroom makes the bound, on an 8-core runner,
// exactly the "8-tenant aggregate throughput >= 4x single-tenant"
// acceptance bar, while on fewer cores it degrades to catching shared
// state that serializes tenants beyond what the hardware already does.
func multiTenantCeiling() float64 {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	return 8.0 / float64(p) * 2.0
}

// benchCompare re-measures the tracked cases and fails if any engine/naive
// time ratio or any allocation count regressed past tolerance.
func benchCompare(w io.Writer, path string, minDur time.Duration, maxIters int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var baseline mecache.BenchFile
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	base := map[string]mecache.BenchResult{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	results, err := measureTracked(w, minDur, maxIters)
	if err != nil {
		return err
	}
	cur := map[string]mecache.BenchResult{}
	for _, r := range results {
		cur[r.Name] = r
	}

	var failures []string
	ratio := func(m map[string]mecache.BenchResult, engine, naive string) (float64, bool) {
		e, okE := m[engine]
		n, okN := m[naive]
		if !okE || !okN || n.NsPerOp == 0 {
			return 0, false
		}
		return e.NsPerOp / n.NsPerOp, true
	}
	for _, r := range results {
		fam, sc, ok := strings.Cut(r.Name, "/")
		if !ok || strings.HasSuffix(fam, "Naive") {
			continue
		}
		if b, ok := base[r.Name]; ok && r.AllocsPerOp > b.AllocsPerOp*allocTolerance+allocSlack {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f",
				r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
		if fam == "ReequilibrateWarm" {
			// The warm case pairs with the cold Reequilibrate twin at the
			// same scale instead of a Naive one.
			curR, okC := ratio(cur, r.Name, "Reequilibrate/"+sc)
			if !okC {
				continue
			}
			status := "ok"
			if sc == "250x100" && curR > warmEpochRatioCeiling {
				status = "REGRESSED"
				failures = append(failures, fmt.Sprintf(
					"%s: warm/cold time ratio %.3f above the %.0fx-speedup ceiling %.2f",
					r.Name, curR, 1/warmEpochRatioCeiling, warmEpochRatioCeiling))
			}
			if baseR, okB := ratio(base, r.Name, "Reequilibrate/"+sc); okB {
				if curR > baseR*ratioTolerance && curR > warmEpochRatioCeiling {
					status = "REGRESSED"
					failures = append(failures, fmt.Sprintf("%s: warm/cold time ratio %.3f vs baseline %.3f",
						r.Name, curR, baseR))
				}
				fmt.Fprintf(w, "%-32s ratio %.3f (baseline %.3f) %s\n", r.Name, curR, baseR, status)
			} else {
				fmt.Fprintf(w, "%-32s ratio %.3f (no baseline) %s\n", r.Name, curR, status)
			}
			continue
		}
		naive := fam + "Naive/" + sc
		curR, okC := ratio(cur, r.Name, naive)
		baseR, okB := ratio(base, r.Name, naive)
		if !okC || !okB {
			continue
		}
		status := "ok"
		if curR > baseR*ratioTolerance {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: engine/naive time ratio %.3f vs baseline %.3f",
				r.Name, curR, baseR))
		}
		if fam == "BestResponseDynamics" && curR > dynamicsRatioCeiling {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: engine/naive time ratio %.3f above the %.1fx-speedup ceiling %.2f",
				r.Name, curR, 1/dynamicsRatioCeiling, dynamicsRatioCeiling))
		}
		fmt.Fprintf(w, "%-32s ratio %.3f (baseline %.3f) %s\n", r.Name, curR, baseR, status)
	}
	const mt8, mt1 = "MultiTenantAdmission/8tenants", "MultiTenantAdmission/1tenant"
	if curR, ok := ratio(cur, mt8, mt1); ok {
		status := "ok"
		if ceiling := multiTenantCeiling(); curR > ceiling {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"MultiTenantAdmission: 8-tenant/1-tenant time ratio %.3f above the scaling ceiling %.2f (GOMAXPROCS %d)",
				curR, ceiling, runtime.GOMAXPROCS(0)))
		}
		if baseR, okB := ratio(base, mt8, mt1); okB {
			if curR > baseR*ratioTolerance {
				status = "REGRESSED"
				failures = append(failures, fmt.Sprintf(
					"MultiTenantAdmission: 8-tenant/1-tenant time ratio %.3f vs baseline %.3f", curR, baseR))
			}
			fmt.Fprintf(w, "%-32s ratio %.3f (baseline %.3f) %s\n", "MultiTenantAdmission 8/1", curR, baseR, status)
		} else {
			fmt.Fprintf(w, "%-32s ratio %.3f (no baseline) %s\n", "MultiTenantAdmission 8/1", curR, status)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "all tracked benchmarks within tolerance of", path)
	return nil
}

func measureTracked(w io.Writer, minDur time.Duration, maxIters int) ([]mecache.BenchResult, error) {
	var out []mecache.BenchResult
	for _, c := range mecache.BenchCases() {
		r, err := mecache.MeasureBench(c, minDur, maxIters)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-32s %12.0f ns/op %10.1f allocs/op %8d iters\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.Iterations)
		out = append(out, r)
	}
	return out, nil
}

func render(w io.Writer, format, outDir string, f func() (*mecache.Figure, error)) error {
	fig, err := f()
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return fig.WriteCSV(w)
	case "svg":
		files, err := mecache.WriteSVGs(fig, outDir)
		if err != nil {
			return err
		}
		for _, name := range files {
			fmt.Fprintln(w, "wrote", name)
		}
		return nil
	default:
		return fig.Render(w)
	}
}
