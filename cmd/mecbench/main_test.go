package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "2", "-quick", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 2(a)", "Fig 2(d)", "LCF", "JoOffloadCache", "OffloadCache"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuickPoA(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "poa", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem-1 bound") {
		t.Fatalf("PoA output missing bound column:\n%s", buf.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "9"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "2", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Fig 2(a) social cost") {
		t.Fatalf("CSV missing panel comment:\n%s", out)
	}
	if !strings.Contains(out, "network size,LCF,LCF_ci95,JoOffloadCache,JoOffloadCache_ci95,OffloadCache,OffloadCache_ci95") {
		t.Fatalf("CSV missing header:\n%s", out)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunSVGFormat(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "2", "-quick", "-format", "svg", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no files reported:\n%s", buf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d SVGs, want 4 panels", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("file is not SVG")
	}
}

func TestRunAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "all", "-quick", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 2", "Fig 3", "Fig 5", "Fig 6", "Fig 7", "PoA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("all-figures output missing %q", want)
		}
	}
}
