// Command mecsim runs a single service-caching scenario and prints the
// outcome of every algorithm as JSON: the placement, the social cost and
// its split, and the running time.
//
// Usage:
//
//	mecsim -size 250 -providers 100 -selfish 0.3 -seed 1
//	mecsim -topology as1755 -providers 80
//	mecsim -parallel 0                   # run the three algorithms concurrently
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mecache"
)

// output is the JSON document mecsim emits.
type output struct {
	Topology   string                      `json:"topology"`
	Nodes      int                         `json:"nodes"`
	Cloudlets  int                         `json:"cloudlets"`
	Providers  int                         `json:"providers"`
	SelfishFr  float64                     `json:"selfishFraction"`
	Seed       uint64                      `json:"seed"`
	Algorithms map[string]algorithmSummary `json:"algorithms"`
}

type algorithmSummary struct {
	SocialCost      float64 `json:"socialCost"`
	CoordinatedCost float64 `json:"coordinatedCost"`
	SelfishCost     float64 `json:"selfishCost"`
	Cached          int     `json:"servicesCached"`
	Remote          int     `json:"servicesRemote"`
	RunMillis       float64 `json:"runMillis"`
	Placement       []int   `json:"placement"`
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mecsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mecsim", flag.ContinueOnError)
	topoName := fs.String("topology", "gtitm", "topology: gtitm, as1755, or waxman")
	size := fs.Int("size", 250, "network size (gtitm/waxman)")
	providers := fs.Int("providers", 100, "number of network service providers")
	selfish := fs.Float64("selfish", 0.3, "selfish fraction 1-xi in [0,1]")
	seed := fs.Uint64("seed", 1, "random seed")
	par := fs.Int("parallel", 1, "worker pool for the three algorithms: 0 = one per CPU, 1 = serial; >1 leaves runMillis contended")
	pretty := fs.Bool("pretty", true, "indent the JSON output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *selfish < 0 || *selfish > 1 {
		return fmt.Errorf("selfish fraction %v outside [0,1]", *selfish)
	}

	cfg := mecache.DefaultWorkload(*seed)
	cfg.NumProviders = *providers

	var topo *mecache.Topology
	var err error
	switch *topoName {
	case "gtitm":
		topo, err = mecache.GTITM(*seed, *size)
	case "as1755":
		topo = mecache.AS1755()
	case "waxman":
		topo, err = mecache.Waxman(*seed, *size, 0.4, 0.14)
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	if err != nil {
		return err
	}
	market, err := mecache.GenerateMarket(topo, cfg)
	if err != nil {
		return err
	}

	results, err := mecache.RunAllParallel(market, 1-*selfish, *seed, *par)
	if err != nil {
		return err
	}

	out := output{
		Topology:   topo.Name,
		Nodes:      topo.N(),
		Cloudlets:  market.Net.NumCloudlets(),
		Providers:  *providers,
		SelfishFr:  *selfish,
		Seed:       *seed,
		Algorithms: make(map[string]algorithmSummary, len(results)),
	}
	for name, r := range results {
		cached, remote := 0, 0
		for _, s := range r.Placement {
			if s == mecache.Remote {
				remote++
			} else {
				cached++
			}
		}
		out.Algorithms[name] = algorithmSummary{
			SocialCost:      r.Social,
			CoordinatedCost: r.Coordinated,
			SelfishCost:     r.Selfish,
			Cached:          cached,
			Remote:          remote,
			RunMillis:       r.Seconds * 1000,
			Placement:       r.Placement,
		}
	}
	enc := json.NewEncoder(w)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(out)
}
