package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunGTITM(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-size", "80", "-providers", "30", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Nodes != 80 || out.Providers != 30 {
		t.Fatalf("summary %+v", out)
	}
	for _, name := range []string{"LCF", "JoOffloadCache", "OffloadCache"} {
		a, ok := out.Algorithms[name]
		if !ok {
			t.Fatalf("missing algorithm %s", name)
		}
		if a.SocialCost <= 0 || len(a.Placement) != 30 {
			t.Fatalf("%s summary %+v", name, a)
		}
		if a.Cached+a.Remote != 30 {
			t.Fatalf("%s cached %d + remote %d != 30", name, a.Cached, a.Remote)
		}
	}
}

func TestRunAS1755(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-topology", "as1755", "-providers", "20"}); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Topology != "as1755" || out.Nodes != 87 {
		t.Fatalf("summary %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-topology", "nope"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run(&buf, []string{"-selfish", "2"}); err == nil {
		t.Fatal("selfish fraction > 1 accepted")
	}
}
