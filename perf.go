package mecache

import (
	"time"

	"mecache/internal/bench"
	"mecache/internal/dynamic"
	"mecache/internal/game"
)

// Performance-engineering surface: the incremental equilibrium engine the
// algorithms share, and the tracked benchmark harness behind the committed
// BENCH_<pr>.json baselines.
type (
	// LoadState is the delta-maintained per-cloudlet load view (tenant
	// counts and capacity headroom) best-response scans run against.
	LoadState = game.LoadState
	// BenchCase is one tracked benchmark case.
	BenchCase = bench.Case
	// BenchResult is one measured case as committed in a baseline file.
	BenchResult = bench.Result
	// BenchFile is the committed benchmark baseline file layout.
	BenchFile = bench.File
)

// NewLoadState builds an empty load view of m; Reset it to a placement,
// then delta-update it with Add/Remove/Move as the placement evolves.
func NewLoadState(m *Market) *LoadState { return game.NewLoadState(m) }

// BestResponseWithLoads computes provider l's capacity-aware best response
// against an incrementally maintained load view, skipping failed cloudlets
// and emitting candidate traces to tr (nil disables tracing at zero cost).
// It is the single scan shared by the dynamic simulator and the daemon.
func BestResponseWithLoads(ls *LoadState, pl Placement, l int, failed []bool, tr Tracer) int {
	return dynamic.BestResponseWithLoads(ls, pl, l, failed, tr)
}

// BenchCases returns every tracked benchmark case, engine/naive pairs first.
func BenchCases() []BenchCase { return bench.Cases() }

// MeasureBench times one tracked case (see bench.Measure for the
// minDuration/maxIters contract).
func MeasureBench(c BenchCase, minDuration time.Duration, maxIters int) (BenchResult, error) {
	return bench.Measure(c, minDuration, maxIters)
}

// MeasureBenchAll measures every tracked case in declaration order.
func MeasureBenchAll(minDuration time.Duration, maxIters int) ([]BenchResult, error) {
	return bench.MeasureAll(minDuration, maxIters)
}
