// Package mecache is a Go implementation of "To Cache or Not to Cache:
// Stable Service Caching in Mobile Edge-Clouds of a Service Market"
// (Xu et al., ICDCS 2020).
//
// It models a two-tiered mobile edge-cloud — cloudlets near users plus
// remote data centers — in which selfish network service providers compete
// to cache their services, and implements the paper's mechanism:
//
//   - Appro (Algorithm 1): an approximation algorithm for the non-selfish
//     service-caching problem, built on a virtual-cloudlet reduction to the
//     Generalized Assignment Problem solved with the Shmoys-Tardos
//     LP-rounding approximation (with an exact min-cost-flow fast path for
//     the slotted reduction).
//   - LCF (Algorithm 2): the approximation-restricted Stackelberg strategy
//     that pins the largest-cost providers to the Appro solution and lets
//     the rest better-respond to a Nash equilibrium of the affine
//     congestion game.
//   - The JoOffloadCache and OffloadCache baselines of the evaluation, a
//     GT-ITM-style topology generator, an AS1755-like Topology-Zoo overlay,
//     a discrete-event SDN test-bed emulation, and drivers regenerating
//     every figure of the paper's Section IV.
//
// This package is a facade: it re-exports the model, the algorithms and the
// experiment drivers from the internal packages so downstream users need a
// single import. Start with Quickstart in the package examples, or:
//
//	market, err := mecache.GenerateMarketGTITM(250, mecache.DefaultWorkload(1))
//	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
//	fmt.Println(res.SocialCost)
package mecache

import (
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/topology"
	"mecache/internal/workload"
)

// Remote is the strategy of leaving a service in its home data center
// ("not to cache").
const Remote = mec.Remote

// Core model types, re-exported from the internal model package.
type (
	// Market is the service market: the two-tiered MEC network plus the
	// competing network service providers.
	Market = mec.Market
	// Network is the two-tiered MEC network (topology + cloudlets + DCs).
	Network = mec.Network
	// Cloudlet is an edge server cluster with finite compute/bandwidth
	// capacity and congestion-priced resources.
	Cloudlet = mec.Cloudlet
	// DataCenter is a remote cloud site reached over a WAN backhaul.
	DataCenter = mec.DataCenter
	// Provider is a network service provider with one service to cache.
	Provider = mec.Provider
	// Placement maps each provider to a cloudlet index or Remote.
	Placement = mec.Placement
)

// Congestion-model extension point: the paper's proportional model plus the
// non-decreasing generalizations its Section II-C remark permits.
type (
	// CongestionModel generalizes Eqs. (1)-(2); install on a Market with
	// SetCongestionModel.
	CongestionModel = mec.CongestionModel
	// LinearCongestion is the paper's proportional model (the default).
	LinearCongestion = mec.LinearCongestion
	// PolynomialCongestion charges Level(k) = k^Degree.
	PolynomialCongestion = mec.PolynomialCongestion
	// ExponentialCongestion charges a multiplicative per-tenant penalty.
	ExponentialCongestion = mec.ExponentialCongestion
)

// Topology types and generators.
type (
	// Topology is a generated network topology with node coordinates.
	Topology = topology.Topology
	// TransitStubConfig parameterizes the GT-ITM-style generator.
	TransitStubConfig = topology.TransitStubConfig
)

// NewNetwork assembles a two-tiered MEC network on a topology.
func NewNetwork(topo *Topology, cloudlets []Cloudlet, dcs []DataCenter) (*Network, error) {
	return mec.NewNetwork(topo, cloudlets, dcs)
}

// NewMarket assembles a service market over a network.
func NewMarket(net *Network, providers []Provider) (*Market, error) {
	return mec.NewMarket(net, providers)
}

// GTITM generates a GT-ITM-style transit-stub topology with exactly n nodes.
func GTITM(seed uint64, n int) (*Topology, error) { return topology.GTITM(seed, n) }

// AS1755 returns the deterministic AS1755-like Topology-Zoo overlay
// (87 nodes, 161 links) used by the test-bed.
func AS1755() *Topology { return topology.AS1755() }

// Waxman generates a Waxman random graph topology.
func Waxman(seed uint64, n int, alpha, beta float64) (*Topology, error) {
	return topology.Waxman(rng.New(seed), n, alpha, beta)
}

// Workload generation (the paper's Section IV-A parameter setting).
type (
	// WorkloadConfig holds every tunable of the Section IV-A setting.
	WorkloadConfig = workload.Config
	// ValueRange is a closed float interval used by WorkloadConfig.
	ValueRange = workload.Range
	// CountRange is a closed integer interval used by WorkloadConfig.
	CountRange = workload.IntRange
)

// DefaultWorkload returns the paper's Section IV-A parameter setting.
func DefaultWorkload(seed uint64) WorkloadConfig { return workload.Default(seed) }

// GenerateMarket builds a market on an existing topology.
func GenerateMarket(topo *Topology, cfg WorkloadConfig) (*Market, error) {
	return workload.Generate(topo, cfg)
}

// GenerateMarketGTITM builds a GT-ITM topology of the given size and a
// market on it.
func GenerateMarketGTITM(size int, cfg WorkloadConfig) (*Market, error) {
	return workload.GenerateGTITM(size, cfg)
}
