package mecache

import (
	"mecache/internal/replica"
)

// Multi-replica caching: the extension direction of the paper's reference
// [26] ("Collaborate or separate?") — a provider caches several replicas
// and each user group is served by the nearest instance.
type (
	// ReplicaPlanner computes replica placements for one provider against
	// a market and its current cloudlet loads.
	ReplicaPlanner = replica.Planner
	// ReplicaPlan is a chosen replica set with its cost and per-group
	// serving assignment.
	ReplicaPlan = replica.Plan
	// UserGroup is an attachment node plus its share of a provider's
	// requests.
	UserGroup = replica.UserGroup
)

// NewReplicaPlanner builds a planner; loads gives the current number of
// services at each cloudlet (nil for an empty network).
func NewReplicaPlanner(m *Market, loads []int) (*ReplicaPlanner, error) {
	return replica.NewPlanner(m, loads)
}

// UniformUserGroups spreads a provider's requests evenly over the given
// attachment nodes.
func UniformUserGroups(nodes []int) []UserGroup { return replica.UniformGroups(nodes) }
